"""Tests for the solve-level parallel pool and its residency protocol."""

import pickle

import pytest

from repro.algorithms.cbas_nd import CBASND
from repro.core.problem import WASOProblem
from repro.parallel import (
    ParallelSolver,
    ResidentSolvePool,
    parallel_solve,
    split_budget,
    worker_payload_bytes,
)


class TestBudgetSplit:
    def test_even_split(self):
        assert split_budget(60, 3) == [20, 20, 20]

    def test_remainder_spread_over_first_workers(self):
        assert split_budget(61, 2) == [31, 30]
        assert split_budget(65, 4) == [17, 16, 16, 16]

    @pytest.mark.parametrize(
        "total,workers", [(7, 3), (100, 7), (13, 13), (999, 8)]
    )
    def test_shares_always_sum_to_total(self, total, workers):
        shares = split_budget(total, workers)
        assert sum(shares) == total
        assert max(shares) - min(shares) <= 1


class TestParallelSolve:
    def test_single_worker_inline(self, small_facebook):
        problem = WASOProblem(graph=small_facebook, k=5)
        result = parallel_solve(
            problem,
            lambda budget: CBASND(budget=budget, m=5, stages=3),
            total_budget=60,
            workers=1,
            rng=4,
        )
        assert result.solution.is_feasible(problem)

    def test_two_workers(self, small_facebook):
        problem = WASOProblem(graph=small_facebook, k=5)
        result = parallel_solve(
            problem,
            lambda budget: CBASND(budget=budget, m=5, stages=3),
            total_budget=60,
            workers=2,
            rng=4,
        )
        assert result.solution.is_feasible(problem)
        assert result.stats.extra["workers"] == 2
        assert result.stats.samples_drawn > 0

    def test_remainder_budget_not_dropped(self, small_facebook):
        """total_budget % workers lands on the first workers."""
        problem = WASOProblem(graph=small_facebook, k=5)
        result = parallel_solve(
            problem,
            lambda budget: CBASND(budget=budget, m=5, stages=3),
            total_budget=61,
            workers=2,
            rng=4,
        )
        assert result.stats.extra["worker_budgets"] == [31, 30]
        assert sum(result.stats.extra["worker_budgets"]) == 61

    def test_compiled_workers_get_slim_payload(self, small_facebook):
        problem = WASOProblem(graph=small_facebook, k=5)
        result = parallel_solve(
            problem,
            lambda budget: CBASND(budget=budget, m=5, stages=3),
            total_budget=60,
            workers=2,
            rng=4,
        )
        assert result.stats.extra["payload"] == "compiled-arrays"
        assert result.solution.is_feasible(problem)

    def test_reference_workers_fall_back_to_dict_payload(
        self, small_facebook
    ):
        problem = WASOProblem(graph=small_facebook, k=5)
        result = parallel_solve(
            problem,
            lambda budget: CBASND(
                budget=budget, m=5, stages=3, engine="reference"
            ),
            total_budget=60,
            workers=2,
            rng=4,
        )
        assert result.stats.extra["payload"] == "dict-graph"
        assert result.solution.is_feasible(problem)

    def test_slim_payload_smaller_than_dict_graph(self, small_facebook):
        problem = WASOProblem(graph=small_facebook, k=5)
        problem.compiled()
        sizes = worker_payload_bytes(problem)
        assert sizes["compiled_arrays_bytes"] < sizes["dict_graph_bytes"]
        # And strictly below what the pool used to ship (dict graph with
        # the frozen-index cache riding along).
        with_cache = len(pickle.dumps(problem))
        assert sizes["compiled_arrays_bytes"] < with_cache

    def test_payload_bytes_on_detached_problem(self, small_facebook):
        """Regression: an already array-backed problem — exactly what the
        resident pools ship — must report its slim size instead of
        raising (``dict_graph_bytes`` has nothing left to measure)."""
        problem = WASOProblem(graph=small_facebook, k=5)
        both = worker_payload_bytes(problem)
        detached_only = worker_payload_bytes(problem.detached())
        assert detached_only["dict_graph_bytes"] is None
        assert detached_only["compiled_arrays_bytes"] > 0
        # The detached problem *is* the slim payload: same bytes.
        assert (
            detached_only["compiled_arrays_bytes"]
            == both["compiled_arrays_bytes"]
        )

    def test_validation(self, small_facebook):
        problem = WASOProblem(graph=small_facebook, k=5)
        factory = lambda budget: CBASND(budget=budget)  # noqa: E731
        with pytest.raises(ValueError):
            parallel_solve(problem, factory, total_budget=10, workers=0)
        with pytest.raises(ValueError):
            parallel_solve(problem, factory, total_budget=1, workers=4)

    def test_reuses_caller_owned_pool(self, small_facebook):
        """A shared executor serves several runs and is not shut down."""
        from concurrent.futures import ProcessPoolExecutor

        problem = WASOProblem(graph=small_facebook, k=5)
        factory = lambda budget: CBASND(  # noqa: E731
            budget=budget, m=5, stages=3
        )
        with ProcessPoolExecutor(max_workers=2) as shared:
            first = parallel_solve(
                problem, factory, total_budget=60, workers=2, rng=4,
                pool=shared,
            )
            second = parallel_solve(
                problem, factory, total_budget=60, workers=2, rng=5,
                pool=shared,
            )
            assert first.solution.is_feasible(problem)
            assert second.solution.is_feasible(problem)
            # The pool survives parallel_solve: it still accepts work.
            assert shared.submit(sum, (1, 2)).result() == 3


class TestResidentSolvePool:
    def _factory(self, **kwargs):
        merged = dict(m=5, stages=3)
        merged.update(kwargs)
        return lambda budget: CBASND(budget=budget, **merged)

    def test_graph_ships_once_per_worker_across_calls(self, small_facebook):
        """The tentpole property: repeated best-of solves on one graph
        install the detached arrays exactly once per worker."""
        problem = WASOProblem(graph=small_facebook, k=5)
        with ResidentSolvePool(2) as pool:
            first = parallel_solve(
                problem, self._factory(), total_budget=60, workers=2,
                rng=4, pool=pool,
            )
            assert pool.installs == 2  # one per (graph, worker) pair
            assert first.stats.extra["graph_shipped"] is True
            assert first.stats.extra["graph_installs"] == 2
            second = parallel_solve(
                problem, self._factory(), total_budget=60, workers=2,
                rng=5, pool=pool,
            )
            assert pool.installs == 2  # nothing re-shipped
            assert second.stats.extra["graph_shipped"] is False
            assert second.stats.extra["graph_installs"] == 0
            # The warm call ships only specs + seeds + solver configs.
            slim = worker_payload_bytes(problem)["compiled_arrays_bytes"]
            assert second.stats.extra["batch_payload_bytes"] < slim
            assert first.stats.extra["batch_payload_bytes"] > slim

    def test_resident_pool_matches_legacy_and_owned(self, small_facebook):
        """Bit-identity across the three pool flavours: owned resident
        pool, shared resident pool, and a legacy executor pool."""
        from concurrent.futures import ProcessPoolExecutor

        problem = WASOProblem(graph=small_facebook, k=5)
        owned = parallel_solve(
            problem, self._factory(), total_budget=60, workers=2, rng=4
        )
        with ResidentSolvePool(2) as pool:
            resident = parallel_solve(
                problem, self._factory(), total_budget=60, workers=2,
                rng=4, pool=pool,
            )
        with ProcessPoolExecutor(max_workers=2) as legacy_pool:
            legacy = parallel_solve(
                problem, self._factory(), total_budget=60, workers=2,
                rng=4, pool=legacy_pool,
            )
        for other in (resident, legacy):
            assert other.members == owned.members
            assert other.willingness == owned.willingness
            assert other.stats.samples_drawn == owned.stats.samples_drawn

    def test_eviction_forces_reshipping(self, small_facebook):
        """A capacity-1 cache alternating two graphs re-ships on every
        switch — and still solves correctly afterwards."""
        from repro.graph.generators import facebook_like

        problem_a = WASOProblem(graph=small_facebook, k=5)
        problem_b = WASOProblem(graph=facebook_like(120, seed=9), k=4)
        with ResidentSolvePool(2, resident_graphs=1) as pool:
            for expected_installs, problem, seed in (
                (2, problem_a, 1),   # cold: ship A
                (2, problem_a, 2),   # warm: nothing
                (4, problem_b, 3),   # B evicts A
                (6, problem_a, 4),   # A must be re-shipped
            ):
                result = parallel_solve(
                    problem, self._factory(), total_budget=40, workers=2,
                    rng=seed, pool=pool,
                )
                assert result.solution.is_feasible(problem)
                assert pool.installs == expected_installs
            token_a = problem_a.payload_token()
            assert pool.resident_tokens(0) == (token_a,)

    def test_reference_solvers_ship_dict_problems(self, small_facebook):
        """The dict path has no resident representation: reference-engine
        workers get the full problem, and no graph is installed."""
        problem = WASOProblem(graph=small_facebook, k=5)
        with ResidentSolvePool(2) as pool:
            result = parallel_solve(
                problem,
                self._factory(engine="reference"),
                total_budget=60,
                workers=2,
                rng=4,
                pool=pool,
            )
            assert result.stats.extra["payload"] == "dict-graph"
            assert result.stats.extra["graph_installs"] == 0
            assert pool.installs == 0
            assert result.solution.is_feasible(problem)

    def test_multiple_chunks_per_worker_parse_correctly(
        self, small_facebook
    ):
        """Regression: a worker shipped several chunks in one batch must
        have its interleaved install-ack / chunk-reply stream parsed by
        send-order tags, not by draining all acks first."""
        from repro.graph.generators import facebook_like

        problem_a = WASOProblem(graph=small_facebook, k=5)
        problem_b = WASOProblem(graph=facebook_like(120, seed=9), k=4)
        solver = CBASND(budget=30, m=4, stages=2)
        with ResidentSolvePool(1) as pool:
            pool.begin_batch()
            for index, problem in enumerate((problem_a, problem_b)):
                spec = problem.payload_spec()
                pool.ship(
                    0,
                    [{
                        "index": index,
                        "problem": spec,
                        "solver_obj": solver,
                        "seed": 7,
                    }],
                    {spec["token"]: problem.compiled().detach()},
                )
            outcomes = pool.collect()
        assert len(outcomes) == 2
        for index, (chunk, problem) in enumerate(
            zip(outcomes, (problem_a, problem_b))
        ):
            status, echoed, members, value = chunk[0][:4]
            assert status == "ok" and echoed == index
            direct = solver.solve(problem, rng=7)
            assert members == direct.members and value == direct.willingness

    def test_pool_smaller_than_workers_rejected(self, small_facebook):
        problem = WASOProblem(graph=small_facebook, k=5)
        with ResidentSolvePool(1) as pool:
            with pytest.raises(ValueError, match="workers"):
                parallel_solve(
                    problem, self._factory(), total_budget=60, workers=2,
                    rng=4, pool=pool,
                )

    def test_closed_pool_rejected(self, small_facebook):
        pool = ResidentSolvePool(1)
        pool.close()
        with pytest.raises(RuntimeError, match="closed"):
            pool.ship(0, [], {})

    def test_validation(self):
        with pytest.raises(ValueError):
            ResidentSolvePool(0)
        with pytest.raises(ValueError):
            ResidentSolvePool(1, resident_graphs=0)


class TestParallelSolver:
    def test_solver_interface(self, small_facebook):
        problem = WASOProblem(graph=small_facebook, k=5)
        solver = ParallelSolver(budget=60, workers=2, m=5, stages=3)
        result = solver.solve(problem, rng=9)
        assert result.solution.is_feasible(problem)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ParallelSolver(budget=0)
        with pytest.raises(ValueError):
            ParallelSolver(budget=10, workers=0)

    def test_quality_comparable_to_serial(self, small_facebook):
        """Splitting the budget must not collapse quality (statistical)."""
        problem = WASOProblem(graph=small_facebook, k=6)
        serial = CBASND(budget=120, m=6, stages=4).solve(problem, rng=2)
        parallel = ParallelSolver(
            budget=120, workers=2, m=6, stages=4
        ).solve(problem, rng=2)
        assert parallel.willingness >= serial.willingness * 0.5
