"""Tests for the parallel sampling pool."""

import pytest

from repro.algorithms.cbas_nd import CBASND
from repro.core.problem import WASOProblem
from repro.parallel import ParallelSolver, parallel_solve


class TestParallelSolve:
    def test_single_worker_inline(self, small_facebook):
        problem = WASOProblem(graph=small_facebook, k=5)
        result = parallel_solve(
            problem,
            lambda budget: CBASND(budget=budget, m=5, stages=3),
            total_budget=60,
            workers=1,
            rng=4,
        )
        assert result.solution.is_feasible(problem)

    def test_two_workers(self, small_facebook):
        problem = WASOProblem(graph=small_facebook, k=5)
        result = parallel_solve(
            problem,
            lambda budget: CBASND(budget=budget, m=5, stages=3),
            total_budget=60,
            workers=2,
            rng=4,
        )
        assert result.solution.is_feasible(problem)
        assert result.stats.extra["workers"] == 2
        assert result.stats.samples_drawn > 0

    def test_validation(self, small_facebook):
        problem = WASOProblem(graph=small_facebook, k=5)
        factory = lambda budget: CBASND(budget=budget)  # noqa: E731
        with pytest.raises(ValueError):
            parallel_solve(problem, factory, total_budget=10, workers=0)
        with pytest.raises(ValueError):
            parallel_solve(problem, factory, total_budget=1, workers=4)


class TestParallelSolver:
    def test_solver_interface(self, small_facebook):
        problem = WASOProblem(graph=small_facebook, k=5)
        solver = ParallelSolver(budget=60, workers=2, m=5, stages=3)
        result = solver.solve(problem, rng=9)
        assert result.solution.is_feasible(problem)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ParallelSolver(budget=0)
        with pytest.raises(ValueError):
            ParallelSolver(budget=10, workers=0)

    def test_quality_comparable_to_serial(self, small_facebook):
        """Splitting the budget must not collapse quality (statistical)."""
        problem = WASOProblem(graph=small_facebook, k=6)
        serial = CBASND(budget=120, m=6, stages=4).solve(problem, rng=2)
        parallel = ParallelSolver(
            budget=120, workers=2, m=6, stages=4
        ).solve(problem, rng=2)
        assert parallel.willingness >= serial.willingness * 0.5
