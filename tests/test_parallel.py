"""Tests for the parallel sampling pool."""

import pickle

import pytest

from repro.algorithms.cbas_nd import CBASND
from repro.core.problem import WASOProblem
from repro.parallel import (
    ParallelSolver,
    parallel_solve,
    split_budget,
    worker_payload_bytes,
)


class TestBudgetSplit:
    def test_even_split(self):
        assert split_budget(60, 3) == [20, 20, 20]

    def test_remainder_spread_over_first_workers(self):
        assert split_budget(61, 2) == [31, 30]
        assert split_budget(65, 4) == [17, 16, 16, 16]

    @pytest.mark.parametrize(
        "total,workers", [(7, 3), (100, 7), (13, 13), (999, 8)]
    )
    def test_shares_always_sum_to_total(self, total, workers):
        shares = split_budget(total, workers)
        assert sum(shares) == total
        assert max(shares) - min(shares) <= 1


class TestParallelSolve:
    def test_single_worker_inline(self, small_facebook):
        problem = WASOProblem(graph=small_facebook, k=5)
        result = parallel_solve(
            problem,
            lambda budget: CBASND(budget=budget, m=5, stages=3),
            total_budget=60,
            workers=1,
            rng=4,
        )
        assert result.solution.is_feasible(problem)

    def test_two_workers(self, small_facebook):
        problem = WASOProblem(graph=small_facebook, k=5)
        result = parallel_solve(
            problem,
            lambda budget: CBASND(budget=budget, m=5, stages=3),
            total_budget=60,
            workers=2,
            rng=4,
        )
        assert result.solution.is_feasible(problem)
        assert result.stats.extra["workers"] == 2
        assert result.stats.samples_drawn > 0

    def test_remainder_budget_not_dropped(self, small_facebook):
        """total_budget % workers lands on the first workers."""
        problem = WASOProblem(graph=small_facebook, k=5)
        result = parallel_solve(
            problem,
            lambda budget: CBASND(budget=budget, m=5, stages=3),
            total_budget=61,
            workers=2,
            rng=4,
        )
        assert result.stats.extra["worker_budgets"] == [31, 30]
        assert sum(result.stats.extra["worker_budgets"]) == 61

    def test_compiled_workers_get_slim_payload(self, small_facebook):
        problem = WASOProblem(graph=small_facebook, k=5)
        result = parallel_solve(
            problem,
            lambda budget: CBASND(budget=budget, m=5, stages=3),
            total_budget=60,
            workers=2,
            rng=4,
        )
        assert result.stats.extra["payload"] == "compiled-arrays"
        assert result.solution.is_feasible(problem)

    def test_reference_workers_fall_back_to_dict_payload(
        self, small_facebook
    ):
        problem = WASOProblem(graph=small_facebook, k=5)
        result = parallel_solve(
            problem,
            lambda budget: CBASND(
                budget=budget, m=5, stages=3, engine="reference"
            ),
            total_budget=60,
            workers=2,
            rng=4,
        )
        assert result.stats.extra["payload"] == "dict-graph"
        assert result.solution.is_feasible(problem)

    def test_slim_payload_smaller_than_dict_graph(self, small_facebook):
        problem = WASOProblem(graph=small_facebook, k=5)
        problem.compiled()
        sizes = worker_payload_bytes(problem)
        assert sizes["compiled_arrays_bytes"] < sizes["dict_graph_bytes"]
        # And strictly below what the pool used to ship (dict graph with
        # the frozen-index cache riding along).
        with_cache = len(pickle.dumps(problem))
        assert sizes["compiled_arrays_bytes"] < with_cache

    def test_payload_bytes_rejects_detached_problem(self, small_facebook):
        problem = WASOProblem(graph=small_facebook, k=5)
        with pytest.raises(ValueError):
            worker_payload_bytes(problem.detached())

    def test_validation(self, small_facebook):
        problem = WASOProblem(graph=small_facebook, k=5)
        factory = lambda budget: CBASND(budget=budget)  # noqa: E731
        with pytest.raises(ValueError):
            parallel_solve(problem, factory, total_budget=10, workers=0)
        with pytest.raises(ValueError):
            parallel_solve(problem, factory, total_budget=1, workers=4)

    def test_reuses_caller_owned_pool(self, small_facebook):
        """A shared executor serves several runs and is not shut down."""
        from concurrent.futures import ProcessPoolExecutor

        problem = WASOProblem(graph=small_facebook, k=5)
        factory = lambda budget: CBASND(  # noqa: E731
            budget=budget, m=5, stages=3
        )
        with ProcessPoolExecutor(max_workers=2) as shared:
            first = parallel_solve(
                problem, factory, total_budget=60, workers=2, rng=4,
                pool=shared,
            )
            second = parallel_solve(
                problem, factory, total_budget=60, workers=2, rng=5,
                pool=shared,
            )
            assert first.solution.is_feasible(problem)
            assert second.solution.is_feasible(problem)
            # The pool survives parallel_solve: it still accepts work.
            assert shared.submit(sum, (1, 2)).result() == 3


class TestParallelSolver:
    def test_solver_interface(self, small_facebook):
        problem = WASOProblem(graph=small_facebook, k=5)
        solver = ParallelSolver(budget=60, workers=2, m=5, stages=3)
        result = solver.solve(problem, rng=9)
        assert result.solution.is_feasible(problem)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ParallelSolver(budget=0)
        with pytest.raises(ValueError):
            ParallelSolver(budget=10, workers=0)

    def test_quality_comparable_to_serial(self, small_facebook):
        """Splitting the budget must not collapse quality (statistical)."""
        problem = WASOProblem(graph=small_facebook, k=6)
        serial = CBASND(budget=120, m=6, stages=4).solve(problem, rng=2)
        parallel = ParallelSolver(
            budget=120, workers=2, m=6, stages=4
        ).solve(problem, rng=2)
        assert parallel.willingness >= serial.willingness * 0.5
