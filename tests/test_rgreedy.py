"""Tests for the randomized greedy baseline."""

import pytest

from repro.algorithms.dgreedy import DGreedy
from repro.algorithms.rgreedy import RGreedy
from repro.core.problem import WASOProblem


class TestConstruction:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            RGreedy(budget=0)
        with pytest.raises(ValueError):
            RGreedy(budget=10, m=0)


class TestSolve:
    def test_feasible_solution(self, small_facebook):
        problem = WASOProblem(graph=small_facebook, k=6)
        result = RGreedy(budget=40, m=8).solve(problem, rng=3)
        assert result.solution.is_feasible(problem)

    def test_budget_respected(self, small_facebook):
        problem = WASOProblem(graph=small_facebook, k=6)
        result = RGreedy(budget=25, m=5).solve(problem, rng=3)
        assert result.stats.samples_drawn <= 25

    def test_reproducible_with_seed(self, small_facebook):
        problem = WASOProblem(graph=small_facebook, k=6)
        first = RGreedy(budget=30, m=6).solve(problem, rng=7)
        second = RGreedy(budget=30, m=6).solve(problem, rng=7)
        assert first.members == second.members

    def test_escapes_figure1_trap_with_enough_budget(self, fig1):
        """Randomization lets RGreedy beat the deterministic trap."""
        problem = WASOProblem(graph=fig1, k=3)
        greedy = DGreedy().solve(problem)
        randomized = RGreedy(budget=60, m=4).solve(problem, rng=0)
        assert randomized.willingness >= greedy.willingness
        assert randomized.willingness == pytest.approx(30.0)

    def test_required_node_always_included(self, small_facebook):
        anchor = next(iter(small_facebook.nodes()))
        problem = WASOProblem(
            graph=small_facebook, k=5, required=frozenset({anchor})
        )
        result = RGreedy(budget=20, m=4).solve(problem, rng=1)
        assert anchor in result.members

    def test_wasodis(self, two_components_graph):
        problem = WASOProblem(
            graph=two_components_graph, k=4, connected=False
        )
        result = RGreedy(budget=30, m=3).solve(problem, rng=2)
        assert result.solution.is_feasible(problem)

    def test_default_m_is_n_over_k(self, small_facebook):
        problem = WASOProblem(graph=small_facebook, k=10)
        result = RGreedy(budget=40).solve(problem, rng=1)
        expected_m = -(-small_facebook.number_of_nodes() // 10)
        assert result.stats.extra["start_nodes"] == expected_m
