"""Tests for the willingness objective, including hypothesis properties."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.willingness import WillingnessEvaluator, willingness
from repro.exceptions import NodeNotFoundError
from repro.graph.generators import random_social_graph
from repro.graph.social_graph import SocialGraph


class TestBasics:
    def test_empty_group(self, triangle_graph):
        assert willingness(triangle_graph, set()) == 0.0

    def test_single_node(self, triangle_graph):
        assert willingness(triangle_graph, {"b"}) == 2.0

    def test_pair_counts_both_directions(self):
        graph = SocialGraph()
        graph.add_node(1, interest=1.0)
        graph.add_node(2, interest=2.0)
        graph.add_edge(1, 2, 0.3, reverse_tightness=0.7)
        # W = 1 + 2 + 0.3 + 0.7
        assert willingness(graph, {1, 2}) == pytest.approx(4.0)

    def test_full_triangle(self, triangle_graph):
        # interests 1+2+3 plus each edge twice (symmetric).
        expected = 6.0 + 2 * (0.5 + 0.25 + 0.75)
        assert willingness(triangle_graph, {"a", "b", "c"}) == pytest.approx(
            expected
        )

    def test_unknown_member_raises(self, triangle_graph):
        with pytest.raises(NodeNotFoundError):
            willingness(triangle_graph, {"a", "zzz"})

    def test_edges_outside_group_ignored(self, path_graph):
        assert willingness(path_graph, {0, 2}) == pytest.approx(2.0)


class TestLambdaWeighting:
    def test_interest_only(self, triangle_graph):
        for node in triangle_graph.nodes():
            triangle_graph.set_lam(node, 1.0)
        assert willingness(
            triangle_graph, {"a", "b", "c"}
        ) == pytest.approx(6.0)

    def test_tightness_only(self, triangle_graph):
        for node in triangle_graph.nodes():
            triangle_graph.set_lam(node, 0.0)
        assert willingness(
            triangle_graph, {"a", "b", "c"}
        ) == pytest.approx(2 * 1.5)

    def test_mixed_weights(self):
        graph = SocialGraph()
        graph.add_node(1, interest=10.0, lam=0.5)
        graph.add_node(2, interest=4.0)  # plain Eq. 1 weights
        graph.add_edge(1, 2, 1.0)
        # node 1: 0.5*10 + 0.5*1; node 2: 4 + 1
        assert willingness(graph, {1, 2}) == pytest.approx(10.5)


class TestIncremental:
    def test_add_delta_matches_difference(self, triangle_graph):
        evaluator = WillingnessEvaluator(triangle_graph)
        group = {"a"}
        delta = evaluator.add_delta("b", group)
        assert delta == pytest.approx(
            evaluator.value({"a", "b"}) - evaluator.value({"a"})
        )

    def test_remove_delta_matches_difference(self, triangle_graph):
        evaluator = WillingnessEvaluator(triangle_graph)
        group = {"a", "b", "c"}
        delta = evaluator.remove_delta("c", group)
        assert delta == pytest.approx(
            evaluator.value({"a", "b"}) - evaluator.value(group)
        )

    def test_add_delta_unknown_node(self, triangle_graph):
        evaluator = WillingnessEvaluator(triangle_graph)
        with pytest.raises(NodeNotFoundError):
            evaluator.add_delta("zzz", set())

    def test_node_potential_upper_bounds_delta(self, small_facebook):
        evaluator = WillingnessEvaluator(small_facebook)
        rng = random.Random(0)
        nodes = small_facebook.node_list()
        for _ in range(50):
            group = set(rng.sample(nodes, 8))
            outside = rng.choice([n for n in nodes if n not in group])
            delta = evaluator.add_delta(outside, group)
            assert delta <= evaluator.node_potential(outside) + 1e-9


@st.composite
def graph_and_sequence(draw):
    """Random small social graph plus a node insertion order."""
    n = draw(st.integers(min_value=2, max_value=12))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    graph = random_social_graph(n, average_degree=3.0, seed=seed)
    rng = random.Random(seed + 1)
    # Random asymmetric tightness and random lambdas for full generality.
    for u, v in graph.edges():
        graph.set_tightness(u, v, rng.uniform(-1.0, 1.0))
        graph.set_tightness(v, u, rng.uniform(-1.0, 1.0))
    for node in graph.nodes():
        graph.set_lam(node, rng.choice([None, rng.random()]))
    order = list(graph.nodes())
    rng.shuffle(order)
    size = draw(st.integers(min_value=1, max_value=n))
    return graph, order[:size]


class TestHypothesisProperties:
    @given(graph_and_sequence())
    @settings(max_examples=60, deadline=None)
    def test_incremental_matches_full(self, payload):
        """Building W via add_delta equals recomputing from scratch."""
        graph, sequence = payload
        evaluator = WillingnessEvaluator(graph)
        group: set = set()
        total = 0.0
        for node in sequence:
            total += evaluator.add_delta(node, group)
            group.add(node)
        assert total == pytest.approx(evaluator.value(group), abs=1e-9)

    @given(graph_and_sequence(), st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=40, deadline=None)
    def test_scaling_scores_scales_willingness(self, payload, factor):
        """W is linear in the scores: scaling all scores scales W."""
        graph, members = payload
        scaled = graph.copy()
        for node in scaled.nodes():
            scaled.set_interest(node, graph.interest(node) * factor)
        for u, v in scaled.edges():
            scaled.set_tightness(u, v, graph.tightness(u, v) * factor)
            scaled.set_tightness(v, u, graph.tightness(v, u) * factor)
        original = willingness(graph, members)
        assert willingness(scaled, members) == pytest.approx(
            original * factor, rel=1e-9, abs=1e-9
        )

    @given(graph_and_sequence())
    @settings(max_examples=40, deadline=None)
    def test_add_then_remove_is_identity(self, payload):
        graph, sequence = payload
        evaluator = WillingnessEvaluator(graph)
        group = set(sequence[:-1])
        node = sequence[-1]
        if node in group:
            group.remove(node)
        before = evaluator.value(group)
        delta_in = evaluator.add_delta(node, group)
        group.add(node)
        delta_out = evaluator.remove_delta(node, group)
        group.remove(node)
        assert before + delta_in + delta_out == pytest.approx(
            before, abs=1e-9
        )
