"""Tests for candidate pre-filtering (metadata, availability)."""

import pytest

from repro.algorithms.exact import ExactBnB
from repro.exceptions import InfeasibleProblemError
from repro.graph.social_graph import SocialGraph
from repro.scenarios import (
    attribute_filter,
    availability_filter,
    filtered_problem,
)


@pytest.fixture
def city_graph() -> SocialGraph:
    """Six people across two cities, fully scored."""
    graph = SocialGraph()
    cities = ["sf", "sf", "sf", "nyc", "nyc", "sf"]
    for node, city in enumerate(cities):
        graph.add_node(
            node,
            interest=1.0 + node * 0.1,
            metadata={"city": city, "age": 20 + node * 5},
        )
    for u, v in [(0, 1), (1, 2), (2, 3), (3, 4), (2, 5), (0, 5)]:
        graph.add_edge(u, v, 0.5)
    return graph


class TestMetadata:
    def test_metadata_roundtrip(self, city_graph):
        assert city_graph.metadata(0)["city"] == "sf"
        assert city_graph.metadata(3)["age"] == 35

    def test_metadata_default_empty(self):
        graph = SocialGraph()
        graph.add_node(1)
        assert graph.metadata(1) == {}

    def test_set_metadata_merges(self, city_graph):
        city_graph.set_metadata(0, vip=True)
        assert city_graph.metadata(0)["vip"] is True
        assert city_graph.metadata(0)["city"] == "sf"

    def test_copy_preserves_metadata(self, city_graph):
        clone = city_graph.copy()
        clone.set_metadata(0, city="la")
        assert city_graph.metadata(0)["city"] == "sf"

    def test_subgraph_preserves_metadata(self, city_graph):
        sub = city_graph.subgraph({0, 1})
        assert sub.metadata(1)["city"] == "sf"


class TestAttributeFilter:
    def test_equality_filter(self, city_graph):
        problem = filtered_problem(
            city_graph, k=3, predicate=attribute_filter(city="sf")
        )
        assert set(problem.candidates()) == {0, 1, 2, 5}

    def test_callable_filter(self, city_graph):
        adults_over_30 = attribute_filter(age=lambda a: a >= 30)
        problem = filtered_problem(city_graph, k=2, predicate=adults_over_30)
        assert set(problem.candidates()) == {2, 3, 4, 5}

    def test_combined_keys(self, city_graph):
        predicate = attribute_filter(city="sf", age=lambda a: a >= 30)
        problem = filtered_problem(city_graph, k=2, predicate=predicate)
        assert set(problem.candidates()) == {2, 5}

    def test_missing_key_fails(self):
        graph = SocialGraph()
        graph.add_node(1)
        graph.add_node(2, metadata={"city": "sf"})
        graph.add_edge(1, 2, 1.0)
        predicate = attribute_filter(city="sf")
        assert not predicate(graph, 1)
        assert predicate(graph, 2)

    def test_required_nodes_exempt(self, city_graph):
        problem = filtered_problem(
            city_graph,
            k=3,
            predicate=attribute_filter(city="nyc"),
            required={0},
        )
        assert 0 in problem.candidates()
        assert 0 in problem.required

    def test_solve_filtered(self, city_graph):
        problem = filtered_problem(
            city_graph, k=3, predicate=attribute_filter(city="sf")
        )
        result = ExactBnB().solve(problem)
        assert result.members <= {0, 1, 2, 5}

    def test_over_filtering_is_infeasible(self, city_graph):
        problem = filtered_problem(
            city_graph, k=3, predicate=attribute_filter(city="nyc")
        )
        with pytest.raises(InfeasibleProblemError):
            problem.ensure_feasible()


class TestAvailabilityFilter:
    def test_only_free_people_selectable(self, city_graph):
        schedules = {
            0: {"sat", "sun"},
            1: {"sat"},
            2: {"sun"},
            5: {"sat", "sun"},
        }
        predicate = availability_filter(schedules, slot="sat")
        problem = filtered_problem(city_graph, k=3, predicate=predicate)
        assert set(problem.candidates()) == {0, 1, 5}

    def test_unknown_people_unavailable(self, city_graph):
        predicate = availability_filter({0: {"sat"}}, slot="sat")
        problem = filtered_problem(city_graph, k=1, predicate=predicate)
        assert set(problem.candidates()) == {0}
