"""Tests for the simulated user study (§5.2)."""

import random

import pytest

from repro.core.problem import WASOProblem
from repro.graph.generators import random_social_graph
from repro.userstudy import (
    ManualCoordinator,
    Opinion,
    StudyConfig,
    UserStudy,
    judge_opinion,
    sample_lambda,
)
from repro.userstudy.study import LAMBDA_HIGH, LAMBDA_LOW


def _connected_graph(n, seed):
    graph = random_social_graph(n, average_degree=6.0, seed=seed)
    components = graph.connected_components()
    anchor = next(iter(components[0]))
    for component in components[1:]:
        graph.add_edge(anchor, next(iter(component)), 0.1)
    return graph


class TestManualCoordinator:
    def test_produces_feasible_group(self):
        graph = _connected_graph(25, seed=3)
        problem = WASOProblem(graph=graph, k=7)
        result = ManualCoordinator().coordinate(problem, rng=1)
        assert len(result.members) == 7
        assert graph.is_connected_subset(result.members)
        assert result.simulated_seconds > 0
        assert result.candidates_considered > 0

    def test_respects_required(self):
        graph = _connected_graph(25, seed=3)
        anchor = next(iter(graph.nodes()))
        problem = WASOProblem(
            graph=graph, k=7, required=frozenset({anchor})
        )
        result = ManualCoordinator().coordinate(problem, rng=1)
        assert anchor in result.members

    def test_quality_below_optimal_on_average(self):
        """The human model should trail the exact optimum."""
        from repro.algorithms.ip import IPSolver

        total_manual, total_optimal = 0.0, 0.0
        for seed in range(5):
            graph = _connected_graph(20, seed=seed)
            problem = WASOProblem(graph=graph, k=6)
            manual = ManualCoordinator().coordinate(problem, rng=seed)
            optimal = IPSolver().solve(problem)
            total_manual += manual.willingness
            total_optimal += optimal.willingness
        assert total_manual < total_optimal

    def test_fatigue_gives_up_on_large_instances(self):
        graph = _connected_graph(60, seed=2)
        problem = WASOProblem(graph=graph, k=13)
        impatient = ManualCoordinator(patience_seconds=10.0)
        result = impatient.coordinate(problem, rng=1)
        assert result.gave_up

    def test_patient_user_does_not_give_up_small(self):
        graph = _connected_graph(15, seed=2)
        problem = WASOProblem(graph=graph, k=4)
        patient = ManualCoordinator(patience_seconds=100000.0)
        result = patient.coordinate(problem, rng=1)
        assert not result.gave_up

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ManualCoordinator(perception_noise=-1.0)
        with pytest.raises(ValueError):
            ManualCoordinator(attention_span=0)
        with pytest.raises(ValueError):
            ManualCoordinator(patience_seconds=0)
        with pytest.raises(ValueError):
            ManualCoordinator(seconds_per_candidate=0)
        with pytest.raises(ValueError):
            ManualCoordinator(revision_rounds=-1)


class TestLambdaSampling:
    def test_within_measured_support(self):
        rng = random.Random(5)
        for _ in range(500):
            lam = sample_lambda(rng)
            assert LAMBDA_LOW <= lam <= LAMBDA_HIGH

    def test_mean_near_paper_value(self):
        rng = random.Random(5)
        values = [sample_lambda(rng) for _ in range(3000)]
        assert abs(sum(values) / len(values) - 0.503) < 0.01


class TestOpinions:
    def test_clear_improvement_is_better(self):
        assert judge_opinion(2.0, 1.0, rng=1) is Opinion.BETTER

    def test_tie_is_acceptable(self):
        assert judge_opinion(1.0, 1.0, rng=1) is Opinion.ACCEPTABLE

    def test_clear_regression_not_acceptable(self):
        assert judge_opinion(0.5, 1.0, rng=1) is Opinion.NOT_ACCEPTABLE

    def test_zero_manual_quality(self):
        assert judge_opinion(1.0, 0.0, rng=1) is Opinion.BETTER


class TestStudy:
    @pytest.fixture(scope="class")
    def outcome(self):
        config = StudyConfig(
            participants=6,
            network_sizes=(15, 20),
            group_sizes=(5, 7),
            base_k=5,
            base_n=15,
            solver_budget=120,
            seed=11,
        )
        return UserStudy(config=config).run()

    def test_lambda_histogram_sums_to_one(self, outcome):
        histogram = outcome.lambda_histogram()
        assert sum(histogram.values()) == pytest.approx(1.0)
        assert len(outcome.lambdas) == 6

    def test_all_modes_measured(self, outcome):
        for mode in ("manual-i", "cbasnd-i", "ip-i", "manual-ni"):
            for n in (15, 20):
                cell = outcome.by_n[mode][n]
                assert len(cell.quality) == 6
                assert cell.mean_quality() > 0

    def test_optimum_dominates_everyone(self, outcome):
        for suffix in ("i", "ni"):
            for n in (15, 20):
                ip = outcome.by_n[f"ip-{suffix}"][n].mean_quality()
                manual = outcome.by_n[f"manual-{suffix}"][n].mean_quality()
                cbasnd = outcome.by_n[f"cbasnd-{suffix}"][n].mean_quality()
                assert ip >= manual - 1e-9
                assert ip >= cbasnd - 1e-9

    def test_cbasnd_beats_manual(self, outcome):
        """The paper's headline: automation beats manual coordination."""
        for n in (15, 20):
            assert (
                outcome.by_n["cbasnd-ni"][n].mean_quality()
                >= outcome.by_n["manual-ni"][n].mean_quality()
            )

    def test_opinions_collected(self, outcome):
        assert sum(outcome.opinions_i.values()) == 6
        assert sum(outcome.opinions_ni.values()) == 6
        percentages = outcome.opinion_percentages(with_initiator=True)
        assert sum(percentages.values()) == pytest.approx(1.0)
