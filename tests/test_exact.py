"""Tests for the exact branch-and-bound solver."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.exact import ExactBnB
from repro.core.problem import WASOProblem
from repro.core.willingness import WillingnessEvaluator
from repro.exceptions import SolverError
from repro.graph.generators import random_social_graph


def _brute_force(problem):
    """Reference optimum by raw enumeration."""
    evaluator = WillingnessEvaluator(problem.graph)
    best_value, best_set = -float("inf"), None
    for combo in itertools.combinations(problem.candidates(), problem.k):
        members = set(combo)
        if problem.required - members:
            continue
        if problem.connected and not problem.graph.is_connected_subset(
            members
        ):
            continue
        value = evaluator.value(members)
        if value > best_value:
            best_value, best_set = value, frozenset(members)
    return best_set, best_value


class TestKnownInstances:
    def test_figure1(self, fig1):
        result = ExactBnB().solve(WASOProblem(graph=fig1, k=3))
        assert result.members == frozenset({2, 3, 4})
        assert result.willingness == pytest.approx(30.0)

    def test_figure3(self, fig3):
        result = ExactBnB().solve(WASOProblem(graph=fig3, k=5))
        assert result.members == frozenset({3, 4, 5, 6, 7})
        assert result.willingness == pytest.approx(9.7)

    def test_k_one(self, fig1):
        result = ExactBnB().solve(WASOProblem(graph=fig1, k=1))
        assert result.members == frozenset({1})

    def test_whole_graph(self, triangle_graph):
        result = ExactBnB().solve(WASOProblem(graph=triangle_graph, k=3))
        assert result.members == frozenset({"a", "b", "c"})


class TestConstraints:
    def test_required(self, fig1):
        problem = WASOProblem(graph=fig1, k=3, required=frozenset({1}))
        result = ExactBnB().solve(problem)
        assert 1 in result.members
        brute_set, brute_value = _brute_force(problem)
        assert result.willingness == pytest.approx(brute_value)

    def test_forbidden(self, fig1):
        problem = WASOProblem(graph=fig1, k=2, forbidden=frozenset({2}))
        result = ExactBnB().solve(problem)
        assert 2 not in result.members
        assert result.members == frozenset({3, 4})

    def test_wasodis(self, two_components_graph):
        problem = WASOProblem(
            graph=two_components_graph, k=4, connected=False
        )
        result = ExactBnB().solve(problem)
        brute_set, brute_value = _brute_force(problem)
        assert result.willingness == pytest.approx(brute_value)

    def test_node_limit_guard(self, small_facebook):
        problem = WASOProblem(graph=small_facebook, k=3)
        with pytest.raises(SolverError):
            ExactBnB(node_limit=10).solve(problem)

    def test_node_limit_validation(self):
        with pytest.raises(ValueError):
            ExactBnB(node_limit=0)


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_connected_matches_enumeration(self, seed, k):
        graph = random_social_graph(10, average_degree=3.0, seed=seed)
        problem = WASOProblem(graph=graph, k=k, connected=True)
        brute_set, brute_value = _brute_force(problem)
        if brute_set is None:
            return  # no connected k-set exists
        result = ExactBnB().solve(problem)
        assert result.willingness == pytest.approx(brute_value)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_wasodis_matches_enumeration(self, seed):
        graph = random_social_graph(10, average_degree=3.0, seed=seed)
        problem = WASOProblem(graph=graph, k=3, connected=False)
        _, brute_value = _brute_force(problem)
        result = ExactBnB().solve(problem)
        assert result.willingness == pytest.approx(brute_value)

    @given(
        st.integers(min_value=5, max_value=11),
        st.integers(min_value=2, max_value=4),
        st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=25, deadline=None)
    def test_hypothesis_matches_enumeration(self, n, k, seed):
        graph = random_social_graph(n, average_degree=3.5, seed=seed)
        problem = WASOProblem(graph=graph, k=k, connected=True)
        brute_set, brute_value = _brute_force(problem)
        if brute_set is None:
            return
        result = ExactBnB().solve(problem)
        assert result.willingness == pytest.approx(brute_value)


class TestEnumerationCompleteness:
    def test_connected_subgraph_count_matches_networkx(self):
        """ESU must see every connected induced k-subgraph exactly once."""
        import networkx as nx

        graph = random_social_graph(9, average_degree=3.0, seed=3)
        k = 3
        nx_graph = nx.Graph()
        nx_graph.add_nodes_from(graph.nodes())
        nx_graph.add_edges_from(graph.edges())
        expected = sum(
            1
            for combo in itertools.combinations(nx_graph.nodes(), k)
            if nx.is_connected(nx_graph.subgraph(combo))
        )
        # Count via the solver by disabling pruning (best = -inf always):
        solver = ExactBnB()
        problem = WASOProblem(graph=graph, k=k)
        solver._evaluator = WillingnessEvaluator(graph)
        solver._problem = problem
        solver._required = set()
        solver._best_members = None
        solver._best_value = float("inf") * -1
        solver._groups_examined = 0
        solver._potential = {
            node: float("inf") for node in graph.nodes()
        }  # bound never prunes
        solver._sorted_potentials = [float("inf")] * graph.number_of_nodes()
        if expected:
            solver._search_connected(graph.node_list())
            assert solver._groups_examined == expected
