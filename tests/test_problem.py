"""Tests for the WASOProblem specification and validation."""

import pytest

from repro.core.problem import WASOProblem
from repro.exceptions import InfeasibleProblemError, ProblemSpecificationError


class TestValidation:
    def test_valid_problem(self, path_graph):
        problem = WASOProblem(graph=path_graph, k=3)
        assert problem.k == 3
        assert problem.connected

    def test_k_too_small(self, path_graph):
        with pytest.raises(ProblemSpecificationError):
            WASOProblem(graph=path_graph, k=0)

    def test_k_exceeds_graph(self, path_graph):
        with pytest.raises(ProblemSpecificationError):
            WASOProblem(graph=path_graph, k=6)

    def test_unknown_required_node(self, path_graph):
        with pytest.raises(ProblemSpecificationError):
            WASOProblem(graph=path_graph, k=2, required=frozenset({99}))

    def test_unknown_forbidden_node(self, path_graph):
        with pytest.raises(ProblemSpecificationError):
            WASOProblem(graph=path_graph, k=2, forbidden=frozenset({99}))

    def test_required_forbidden_overlap(self, path_graph):
        with pytest.raises(ProblemSpecificationError):
            WASOProblem(
                graph=path_graph,
                k=2,
                required=frozenset({1}),
                forbidden=frozenset({1}),
            )

    def test_too_many_required(self, path_graph):
        with pytest.raises(ProblemSpecificationError):
            WASOProblem(graph=path_graph, k=2, required=frozenset({0, 1, 2}))

    def test_sets_coerced_to_frozensets(self, path_graph):
        problem = WASOProblem(graph=path_graph, k=2, required={0})
        assert isinstance(problem.required, frozenset)


class TestCandidates:
    def test_forbidden_excluded(self, path_graph):
        problem = WASOProblem(graph=path_graph, k=2, forbidden=frozenset({2}))
        assert 2 not in problem.candidates()
        assert not problem.is_candidate(2)
        assert problem.is_candidate(1)

    def test_unknown_not_candidate(self, path_graph):
        problem = WASOProblem(graph=path_graph, k=2)
        assert not problem.is_candidate(99)


class TestFeasibility:
    def test_connected_feasible(self, path_graph):
        WASOProblem(graph=path_graph, k=5).ensure_feasible()

    def test_too_few_allowed(self, path_graph):
        problem = WASOProblem(
            graph=path_graph, k=4, forbidden=frozenset({0, 1})
        )
        with pytest.raises(InfeasibleProblemError):
            problem.ensure_feasible()

    def test_component_too_small(self, two_components_graph):
        problem = WASOProblem(graph=two_components_graph, k=4)
        with pytest.raises(InfeasibleProblemError):
            problem.ensure_feasible()

    def test_disconnected_ok_for_wasodis(self, two_components_graph):
        WASOProblem(
            graph=two_components_graph, k=4, connected=False
        ).ensure_feasible()

    def test_required_split_across_components(self, two_components_graph):
        problem = WASOProblem(
            graph=two_components_graph, k=3, required=frozenset({0, 3})
        )
        with pytest.raises(InfeasibleProblemError):
            problem.ensure_feasible()

    def test_forbidden_can_cut_component(self, path_graph):
        # Forbidding the middle node splits the path; k=3 no longer fits.
        problem = WASOProblem(
            graph=path_graph, k=3, forbidden=frozenset({2})
        )
        with pytest.raises(InfeasibleProblemError):
            problem.ensure_feasible()

    def test_required_in_big_enough_component(self, two_components_graph):
        WASOProblem(
            graph=two_components_graph, k=3, required=frozenset({3})
        ).ensure_feasible()


class TestDerivedProblems:
    def test_with_k(self, path_graph):
        problem = WASOProblem(graph=path_graph, k=2, required=frozenset({0}))
        bigger = problem.with_k(4)
        assert bigger.k == 4
        assert bigger.required == frozenset({0})

    def test_without_nodes(self, path_graph):
        problem = WASOProblem(graph=path_graph, k=2, required=frozenset({0}))
        reduced = problem.without_nodes({0, 4})
        assert 0 in reduced.forbidden
        assert 4 in reduced.forbidden
        assert 0 not in reduced.required
