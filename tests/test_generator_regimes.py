"""Quantitative checks of the dataset-substitution claims (DESIGN.md §3).

The benches' validity rests on the synthetic graphs actually being in the
regimes claimed: crawl-matching average degrees, genuine community
structure (high modularity under a standard detection algorithm), heavy
upper tails in the interest distribution, and tightness that is higher
inside cohesive neighbourhoods than across bridges.
"""

import statistics

import networkx as nx
import pytest

from repro.graph.generators import (
    community_social_graph,
    dblp_like,
    facebook_like,
    flickr_like,
)


def _to_nx(graph) -> nx.Graph:
    nx_graph = nx.Graph()
    nx_graph.add_nodes_from(graph.nodes())
    nx_graph.add_edges_from(graph.edges())
    return nx_graph


@pytest.fixture(scope="module")
def fb():
    return facebook_like(500, seed=1)


@pytest.fixture(scope="module")
def dblp():
    return dblp_like(500, seed=1)


class TestDegreeRegimes:
    def test_facebook_matches_crawl(self, fb):
        assert 19.0 <= fb.average_degree() <= 33.0  # crawl: 26.1

    def test_dblp_matches_crawl(self, dblp):
        assert 2.8 <= dblp.average_degree() <= 5.5  # crawl: 3.66

    def test_flickr_matches_crawl(self):
        graph = flickr_like(500, seed=1)
        assert 17.0 <= graph.average_degree() <= 32.0  # crawl: ~24.5


class TestCommunityStructure:
    def test_facebook_modularity(self, fb):
        """Greedy-modularity communities must find real structure."""
        nx_graph = _to_nx(fb)
        communities = nx.community.greedy_modularity_communities(nx_graph)
        modularity = nx.community.modularity(nx_graph, communities)
        assert modularity > 0.3, f"modularity {modularity:.3f}"

    def test_dblp_modularity(self, dblp):
        nx_graph = _to_nx(dblp)
        giant = max(nx.connected_components(nx_graph), key=len)
        sub = nx_graph.subgraph(giant)
        communities = nx.community.greedy_modularity_communities(sub)
        modularity = nx.community.modularity(sub, communities)
        assert modularity > 0.5, f"modularity {modularity:.3f}"

    def test_cohesion_heterogeneity(self):
        """Per-community cohesion spread must vary local clustering."""
        graph = community_social_graph(400, seed=4)
        nx_graph = _to_nx(graph)
        clustering = nx.clustering(nx_graph)
        values = list(clustering.values())
        assert statistics.pstdev(values) > 0.1


class TestScoreRegimes:
    def test_interest_heavy_tail(self, fb):
        """Power-law interest: the top percentile dominates the median."""
        interests = sorted(
            (fb.interest(n) for n in fb.nodes()), reverse=True
        )
        top_percentile = interests[len(interests) // 100]
        median = interests[len(interests) // 2]
        assert top_percentile > 5 * median

    def test_tightness_reflects_cohesion(self, fb):
        """Edges inside triangles carry more tightness than bridges."""
        nx_graph = _to_nx(fb)
        in_triangle, no_triangle = [], []
        for u, v in list(fb.edges())[:2000]:
            common = len(
                set(nx_graph.neighbors(u)) & set(nx_graph.neighbors(v))
            )
            pair = (fb.tightness(u, v) + fb.tightness(v, u)) / 2.0
            (in_triangle if common > 2 else no_triangle).append(pair)
        if in_triangle and no_triangle:
            assert statistics.fmean(in_triangle) > statistics.fmean(
                no_triangle
            )

    def test_tightness_asymmetry_tracks_degree(self, fb):
        """τ_uv > τ_vu exactly when deg(u) < deg(v) (up to jitter)."""
        agree, total = 0, 0
        for u, v in list(fb.edges())[:500]:
            du, dv = fb.degree(u), fb.degree(v)
            if du == dv:
                continue
            total += 1
            if (fb.tightness(u, v) > fb.tightness(v, u)) == (du < dv):
                agree += 1
        assert total > 0
        assert agree / total > 0.8  # jitter flips only a small fraction