"""Tests for CBAS (budget allocation across start nodes)."""

import pytest

from repro.algorithms.cbas import CBAS
from repro.core.problem import WASOProblem


class TestConstruction:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            CBAS(budget=0)
        with pytest.raises(ValueError):
            CBAS(budget=10, m=0)
        with pytest.raises(ValueError):
            CBAS(budget=10, stages=0)
        with pytest.raises(ValueError):
            CBAS(budget=10, allocation="nope")


class TestSolve:
    def test_feasible_solution(self, small_facebook):
        problem = WASOProblem(graph=small_facebook, k=6)
        result = CBAS(budget=100, m=10, stages=4).solve(problem, rng=3)
        assert result.solution.is_feasible(problem)

    def test_stage_count_reported(self, small_facebook):
        problem = WASOProblem(graph=small_facebook, k=6)
        result = CBAS(budget=80, m=8, stages=4).solve(problem, rng=3)
        assert result.stats.stages == 4

    def test_reproducible(self, small_facebook):
        problem = WASOProblem(graph=small_facebook, k=6)
        first = CBAS(budget=100, m=10, stages=4).solve(problem, rng=11)
        second = CBAS(budget=100, m=10, stages=4).solve(problem, rng=11)
        assert first.members == second.members

    def test_budget_approximately_spent(self, small_facebook):
        problem = WASOProblem(graph=small_facebook, k=6)
        result = CBAS(budget=120, m=10, stages=4).solve(problem, rng=3)
        # Budget is quantized per stage; the total may differ by rounding
        # and pruning but should stay in the right ballpark.
        assert 60 <= result.stats.samples_drawn <= 130

    def test_solution_is_best_sample(self, fig3):
        problem = WASOProblem(graph=fig3, k=5)
        result = CBAS(budget=150, m=2, stages=3).solve(problem, rng=1)
        # With this much budget on 10 nodes the optimum is reliably found.
        assert result.willingness == pytest.approx(9.7)

    def test_start_node_count_capped_by_graph(self, fig3):
        problem = WASOProblem(graph=fig3, k=5)
        result = CBAS(budget=50, m=500, stages=2).solve(problem, rng=1)
        assert result.stats.extra["start_nodes"] <= 10

    def test_pruning_happens(self, small_facebook):
        problem = WASOProblem(graph=small_facebook, k=8)
        result = CBAS(budget=200, m=20, stages=5).solve(problem, rng=3)
        # With heterogeneous start nodes, OCBA prunes hopeless ones.
        assert result.stats.extra["pruned_start_nodes"] >= 0

    def test_gaussian_allocation_runs(self, small_facebook):
        problem = WASOProblem(graph=small_facebook, k=6)
        result = CBAS(
            budget=100, m=10, stages=4, allocation="gaussian"
        ).solve(problem, rng=3)
        assert result.solution.is_feasible(problem)

    def test_required_node(self, small_facebook):
        anchor = next(iter(small_facebook.nodes()))
        problem = WASOProblem(
            graph=small_facebook, k=5, required=frozenset({anchor})
        )
        result = CBAS(budget=60, m=6, stages=3).solve(problem, rng=1)
        assert anchor in result.members

    def test_default_stage_plan_used(self, small_facebook):
        problem = WASOProblem(graph=small_facebook, k=6)
        result = CBAS(budget=100, m=10).solve(problem, rng=3)
        assert result.stats.stages >= 1

    def test_wasodis(self, two_components_graph):
        problem = WASOProblem(
            graph=two_components_graph, k=4, connected=False
        )
        result = CBAS(budget=40, m=3, stages=2).solve(problem, rng=2)
        assert result.solution.is_feasible(problem)


class TestBudgetMonotonicity:
    def test_more_budget_is_not_worse_on_average(self, small_facebook):
        """Statistical: mean quality at T=150 >= mean quality at T=15."""
        problem = WASOProblem(graph=small_facebook, k=8)
        small_mean = sum(
            CBAS(budget=15, m=5, stages=2).solve(problem, rng=s).willingness
            for s in range(8)
        )
        large_mean = sum(
            CBAS(budget=150, m=5, stages=4).solve(problem, rng=s).willingness
            for s in range(8)
        )
        assert large_mean >= small_mean
