"""Tests for the shared graph-residency machinery (repro.parallel.residency).

The ledger is the parent-side mirror of a worker's resident cache; the
load-bearing property is that the two can never disagree — every install
and eviction the worker performs was planned by the ledger, so replaying
the ledger's decisions against a store must reproduce its resident set
exactly.
"""

import pytest

from repro.parallel.residency import (
    DEFAULT_RESIDENT_GRAPHS,
    ResidencyLedger,
    ResidentGraphStore,
    record_shipping,
)


class TestResidencyLedger:
    def test_first_use_ships_later_uses_do_not(self):
        ledger = ResidencyLedger(capacity=2)
        assert ledger.plan("a") == (True, ())
        assert ledger.plan("a") == (False, ())
        assert ledger.installs == 1
        assert ledger.is_resident("a")

    def test_lru_eviction_over_capacity(self):
        ledger = ResidencyLedger(capacity=2)
        assert ledger.plan("a") == (True, ())
        assert ledger.plan("b") == (True, ())
        # "a" is the least recently used: installing "c" evicts it.
        ship, evicted = ledger.plan("c")
        assert ship and evicted == ("a",)
        assert ledger.resident_tokens() == ("b", "c")
        # "a" must now be re-shipped.
        ship, evicted = ledger.plan("a")
        assert ship and evicted == ("b",)
        assert ledger.installs == 4

    def test_use_refreshes_lru_order(self):
        ledger = ResidencyLedger(capacity=2)
        ledger.plan("a")
        ledger.plan("b")
        ledger.plan("a")  # touch: "b" becomes the eviction candidate
        ship, evicted = ledger.plan("c")
        assert ship and evicted == ("b",)
        assert ledger.resident_tokens() == ("a", "c")

    def test_most_recent(self):
        ledger = ResidencyLedger()
        assert ledger.most_recent() is None
        ledger.plan("a")
        ledger.plan("b")
        assert ledger.most_recent() == "b"
        ledger.plan("a")
        assert ledger.most_recent() == "a"

    def test_capacity_one(self):
        ledger = ResidencyLedger(capacity=1)
        ledger.plan("a")
        ship, evicted = ledger.plan("b")
        assert ship and evicted == ("a",)
        assert ledger.resident_tokens() == ("b",)

    def test_pinned_tokens_survive_eviction(self):
        """A dispatch referencing more graphs than fit pins its whole
        token set: installs travel ahead of the work, so a later install
        must not displace arrays an earlier entry still needs."""
        ledger = ResidencyLedger(capacity=1)
        pinned = {"a", "b"}
        assert ledger.plan("a", pinned=pinned) == (True, ())
        # Over capacity, but "a" is pinned: nothing evicted.
        assert ledger.plan("b", pinned=pinned) == (True, ())
        assert ledger.resident_tokens() == ("a", "b")
        # The next unpinned plan shrinks the cache back below capacity.
        ship, evicted = ledger.plan("c")
        assert ship and evicted == ("a", "b")
        assert ledger.resident_tokens() == ("c",)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ResidencyLedger(capacity=0)

    def test_default_capacity(self):
        ledger = ResidencyLedger()
        assert ledger.capacity == DEFAULT_RESIDENT_GRAPHS

    def test_mirror_matches_store(self):
        """Replaying the ledger's decisions keeps a store in lockstep."""
        ledger = ResidencyLedger(capacity=2)
        store = ResidentGraphStore()
        for token in ["a", "b", "a", "c", "d", "b", "d", "a"]:
            ship, evictions = ledger.plan(token)
            if ship:
                store.install(token, object(), evictions)
            assert sorted(store.tokens()) == sorted(ledger.resident_tokens())
            assert len(store) <= ledger.capacity


class TestResidentGraphStore:
    def test_install_get_roundtrip(self):
        store = ResidentGraphStore()
        payload = object()
        store.install("t1", payload)
        assert store.get("t1") is payload
        assert "t1" in store

    def test_missing_token_is_a_protocol_error(self):
        store = ResidentGraphStore()
        store.install("t1", object())
        with pytest.raises(RuntimeError, match="not resident"):
            store.get("t2")

    def test_eviction_removes_entries(self):
        store = ResidentGraphStore()
        store.install("t1", object())
        store.install("t2", object(), evict=("t1",))
        assert "t1" not in store
        assert store.tokens() == ("t2",)
        # Evicting an already-absent token is a no-op, not an error.
        store.install("t3", object(), evict=("gone",))
        assert len(store) == 2


class TestRecordShipping:
    def test_all_keys(self):
        extra = {}
        record_shipping(extra, shipped=True, payload_bytes=123, installs=2)
        assert extra == {
            "graph_shipped": True,
            "graph_installs": 2,
            "batch_payload_bytes": 123,
        }

    def test_optional_fields_omitted(self):
        extra = {}
        record_shipping(extra, shipped=False)
        assert extra == {"graph_shipped": False}
