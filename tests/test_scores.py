"""Tests for the interest / tightness score models."""

import random

import pytest

from repro.graph.generators import grid_graph
from repro.graph.scores import (
    CommonNeighbourTightness,
    PowerLawInterestModel,
    empirical_power_law_exponent,
    normalize_scores,
    power_law_sample,
)
from repro.graph.social_graph import SocialGraph


class TestPowerLaw:
    def test_samples_at_least_x_min(self, rng):
        for _ in range(200):
            assert power_law_sample(rng, beta=2.5, x_min=1.0) >= 1.0

    def test_invalid_exponent(self, rng):
        with pytest.raises(ValueError):
            power_law_sample(rng, beta=1.0)

    def test_hill_estimator_recovers_exponent(self):
        rng = random.Random(7)
        values = [power_law_sample(rng, beta=2.5) for _ in range(20000)]
        beta_hat = empirical_power_law_exponent(values)
        assert 2.35 < beta_hat < 2.65

    def test_model_normalizes_to_unit_max(self, rng):
        scores = PowerLawInterestModel().sample(500, rng)
        assert max(scores) == pytest.approx(1.0)
        assert all(0.0 < s <= 1.0 for s in scores)

    def test_model_cap_applies(self, rng):
        model = PowerLawInterestModel(beta=1.5, cap=10.0)
        scores = model.sample(1000, rng)
        assert min(scores) >= 1.0 / 10.0  # raw values in [1, cap]

    def test_assign_covers_all_nodes(self, rng):
        graph = grid_graph(4)
        PowerLawInterestModel().assign(graph, rng)
        assert all(graph.interest(node) > 0 for node in graph.nodes())

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PowerLawInterestModel(beta=0.9)
        with pytest.raises(ValueError):
            PowerLawInterestModel(cap=0.5)
        with pytest.raises(ValueError):
            PowerLawInterestModel().sample(-1, random.Random(0))


class TestNormalize:
    def test_scales_max_to_one(self):
        normalized = normalize_scores({"a": 2.0, "b": 4.0})
        assert normalized == {"a": 0.5, "b": 1.0}

    def test_empty_and_zero(self):
        assert normalize_scores({}) == {}
        assert normalize_scores({"a": 0.0}) == {"a": 0.0}


def _two_triangles_with_bridge() -> SocialGraph:
    """Nodes 0-1-2 and 3-4-5 triangles joined by the bridge 2-3."""
    graph = SocialGraph()
    for node in range(6):
        graph.add_node(node, interest=0.1)
    for u, v in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)]:
        graph.add_edge(u, v, 1.0)
    return graph


class TestCommonNeighbourTightness:
    def test_symmetric_normalized_by_max(self, rng):
        graph = _two_triangles_with_bridge()
        CommonNeighbourTightness().assign(graph, rng)
        # Triangle edges have 1 common neighbour (raw 2); bridge has none
        # (raw 1); max raw is 2.
        assert graph.tightness(0, 1) == pytest.approx(1.0)
        assert graph.tightness(2, 3) == pytest.approx(0.5)
        assert graph.tightness(1, 0) == graph.tightness(0, 1)

    def test_asymmetric_normalized_by_degree(self, rng):
        graph = _two_triangles_with_bridge()
        CommonNeighbourTightness(asymmetric=True).assign(graph, rng)
        # Edge (0, 1): 1 common neighbour, deg(0) = 2 -> 2/2 = 1.0.
        assert graph.tightness(0, 1) == pytest.approx(1.0)
        # Edge (2, 3): no common neighbour, deg(2) = 3 -> 1/3.
        assert graph.tightness(2, 3) == pytest.approx(1.0 / 3.0)
        # Asymmetry shows on edges with different endpoint degrees:
        # deg(1) = 2 vs deg(2) = 3 on edge (1, 2).
        assert graph.tightness(1, 2) != graph.tightness(2, 1)

    def test_jitter_keeps_scores_in_unit_interval(self, rng):
        graph = _two_triangles_with_bridge()
        CommonNeighbourTightness(asymmetric=True, jitter=0.5).assign(
            graph, rng
        )
        for u, v in graph.edges():
            assert 0.0 <= graph.tightness(u, v) <= 1.0
            assert 0.0 <= graph.tightness(v, u) <= 1.0

    def test_jitter_validation(self):
        with pytest.raises(ValueError):
            CommonNeighbourTightness(jitter=1.0)
        with pytest.raises(ValueError):
            CommonNeighbourTightness(jitter=-0.1)

    def test_deterministic_without_jitter(self):
        first = _two_triangles_with_bridge()
        second = _two_triangles_with_bridge()
        CommonNeighbourTightness().assign(first, random.Random(1))
        CommonNeighbourTightness().assign(second, random.Random(2))
        for u, v in first.edges():
            assert first.tightness(u, v) == second.tightness(u, v)


class TestHillEstimator:
    def test_needs_two_positive_values(self):
        with pytest.raises(ValueError):
            empirical_power_law_exponent([1.0])

    def test_identical_values_rejected(self):
        with pytest.raises(ValueError):
            empirical_power_law_exponent([2.0, 2.0, 2.0])
