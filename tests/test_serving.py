"""Chaos and correctness suite for the overload-safe serving daemon.

What must hold (see ``repro/serving/``):

* **differential** — seeded requests served through the daemon are
  bit-identical to calling ``ExecutionContext.solve_many`` directly, on
  both the compiled and vector engines, and stay bit-identical while a
  chaos plan kills pool workers underneath the served batch;
* **overload** — under a fixed arrival script with the dispatch loop
  stalled, exactly the scripted set of requests is shed, with typed
  ``kind="shed"`` / ``kind="queue_timeout"`` rejections, and the
  admission counters balance (``received == admitted + shed``, nothing
  dropped without a reply);
* **deadlines** — a request whose deadline expires while queued fails
  with ``kind="deadline"`` without wasting a solve;
* **SLO routing** — ``slo_s`` requests get a budget bought from the
  online-calibrated work-rate model, with the full contract
  (``slo_s`` / ``slo_budget`` / ``slo_promised_s`` / ``slo_achieved_s``)
  stamped in the reply;
* **lifecycle** — drain-on-shutdown answers every admitted request,
  sheds arrivals during the drain, and leaves no orphan worker
  processes; health endpoints answer plain HTTP on the serving port,
  including the degraded state after a pool exhausts its retries.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import os
import signal
import socket
import struct
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.exceptions import RequestFailure
from repro.graph.generators import facebook_like
from repro.graph.io import save_json
from repro.parallel import NEXT_RPC, FaultPlan
from repro.runtime import ExecutionContext, request_from_spec
from repro.serving import (
    AdmissionController,
    LatencyCalibrator,
    PendingRequest,
    ServingDaemon,
)

pytestmark = pytest.mark.chaos

#: stats.extra keys that describe warmth/shipping/recovery rather than
#: the solve itself (mirrors the chaos suite in test_faults.py).
_VOLATILE_KEYS = frozenset(
    {
        "graph_shipped",
        "graph_installs",
        "batch_payload_bytes",
        "shard_rpcs",
        "shard_patch_bytes",
        "graph_patch_bytes",
        "stage_workers",
        "failed_requests",
        "worker_restarts",
        "chunk_retries",
        "degraded_to_serial",
        "deadline_missed",
    }
)


@pytest.fixture
def no_orphans():
    before = set(multiprocessing.active_children())
    yield
    deadline = time.monotonic() + 5.0
    while True:
        leaked = set(multiprocessing.active_children()) - before
        if not leaked:
            return
        if time.monotonic() >= deadline:
            raise AssertionError(f"orphan worker processes: {leaked}")
        time.sleep(0.02)


# ----------------------------------------------------------------------
# Client helpers
# ----------------------------------------------------------------------
async def _send_all(host: int, port: int, specs) -> "dict[object, dict]":
    """Send every spec on one connection, return replies keyed by id."""
    reader, writer = await asyncio.open_connection(host, port)
    for spec in specs:
        raw = spec if isinstance(spec, str) else json.dumps(spec)
        writer.write(raw.encode() + b"\n")
    await writer.drain()
    writer.write_eof()
    replies = {}
    while True:
        line = await reader.readline()
        if not line:
            break
        reply = json.loads(line)
        replies[reply["id"]] = reply
    writer.close()
    await writer.wait_closed()
    return replies


async def _http_request(
    host: str, port: int, path: str, method: str = "GET"
) -> "tuple[int, bytes, bytes]":
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(f"{method} {path} HTTP/1.1\r\nHost: t\r\n\r\n".encode())
    await writer.drain()
    data = await reader.read()
    writer.close()
    await writer.wait_closed()
    head, _, body = data.partition(b"\r\n\r\n")
    return int(head.split()[1]), head, body


async def _http_get(host: str, port: int, path: str) -> "tuple[int, dict]":
    code, _, body = await _http_request(host, port, path)
    return code, json.loads(body)


def _daemon_kwargs(**overrides) -> dict:
    kwargs = {"workers": 2, "cpu_count": 4}
    kwargs.update(overrides)
    return kwargs


def _specs(count: int = 4, engine: str = "compiled", **extra) -> list:
    return [
        {
            "id": f"r{index}",
            "k": 5,
            "budget": 40,
            "m": 4,
            "stages": 2,
            "engine": engine,
            "seed": 20 + index,
            **extra,
        }
        for index in range(count)
    ]


def _direct_results(graph, specs, **context_kwargs):
    requests = [
        request_from_spec(
            graph,
            {k: v for k, v in spec.items() if k not in ("id", "tenant")},
        )
        for spec in specs
    ]
    with ExecutionContext(workers=2, cpu_count=4, **context_kwargs) as context:
        return context.solve_many(requests)


def _assert_reply_matches(reply: dict, result) -> None:
    assert reply["ok"], reply
    assert reply["members"] == sorted(map(str, result.solution.members))
    assert reply["willingness"] == result.solution.willingness
    assert reply["stats"]["samples_drawn"] == result.stats.samples_drawn
    assert reply["stats"]["failed_samples"] == result.stats.failed_samples
    assert reply["stats"]["stages"] == result.stats.stages
    strip = lambda extra: {  # noqa: E731
        key: value
        for key, value in extra.items()
        if key not in _VOLATILE_KEYS
    }
    assert strip(reply["extra"]) == strip(result.stats.extra)


# ----------------------------------------------------------------------
# Differential: daemon == direct solve_many, with and without chaos
# ----------------------------------------------------------------------
class TestDifferential:
    @pytest.mark.parametrize("engine", ["compiled", "vector"])
    def test_daemon_matches_direct_solve_many(
        self, small_facebook, no_orphans, engine
    ):
        specs = _specs(engine=engine)
        direct = _direct_results(small_facebook, specs)

        async def scenario():
            # Stall the first dispatch so all four arrivals coalesce
            # into one batch — the multi-request residency path.
            daemon = ServingDaemon(
                small_facebook,
                fault_plan=FaultPlan(stalls={1: 0.3}),
                **_daemon_kwargs(),
            )
            host, port = await daemon.start()
            try:
                replies = await _send_all(host, port, specs)
            finally:
                await daemon.shutdown()
            assert daemon.counters["batches"] == 1
            return replies

        replies = asyncio.run(scenario())
        assert len(replies) == len(specs)
        for spec, result in zip(specs, direct):
            _assert_reply_matches(replies[spec["id"]], result)

    def test_worker_kills_under_served_batch_are_invisible(
        self, small_facebook, no_orphans
    ):
        """A chaos plan SIGKILLs a pool worker mid-request *through the
        daemon*: the batch recovers and every reply is bit-identical to
        the fault-free direct run."""
        specs = _specs()
        direct = _direct_results(small_facebook, specs)

        async def scenario():
            plan = FaultPlan(kills=[(0, NEXT_RPC)], stalls={1: 0.3})
            daemon = ServingDaemon(
                small_facebook,
                mode="solve",  # force the pool so the kill lands
                fault_plan=plan,
                **_daemon_kwargs(),
            )
            host, port = await daemon.start()
            try:
                replies = await _send_all(host, port, specs)
            finally:
                await daemon.shutdown()
            assert ("kill", 0) in {
                (event, worker) for event, worker, _ in plan.log
            }, "the injected kill never fired"
            return replies

        replies = asyncio.run(scenario())
        for spec, result in zip(specs, direct):
            reply = replies[spec["id"]]
            _assert_reply_matches(reply, result)
            assert reply["extra"]["worker_restarts"] == 1

    def test_client_disconnect_mid_solve_keeps_daemon_serving(
        self, small_facebook, no_orphans
    ):
        """A client that vanishes (RST) while its admitted request is
        still solving must not poison the dispatch loop: the orphaned
        solve completes into nowhere and *later* clients still get
        their answers."""

        async def scenario():
            daemon = ServingDaemon(
                small_facebook,
                fault_plan=FaultPlan(stalls={1: 0.4}),
                **_daemon_kwargs(),
            )
            host, port = await daemon.start()
            try:
                reader, writer = await asyncio.open_connection(host, port)
                # SO_LINGER(1, 0) turns the abort below into a hard RST
                # (a plain close is a polite FIN the daemon just reads
                # as EOF) — the server's readline raises mid-solve and
                # connection cleanup cancels the pending delivery task
                # while the dispatcher still holds the shared future.
                sock = writer.get_extra_info("socket")
                sock.setsockopt(
                    socket.SOL_SOCKET,
                    socket.SO_LINGER,
                    struct.pack("ii", 1, 0),
                )
                writer.write(
                    json.dumps(
                        {"id": "gone", "k": 4, "budget": 40, "seed": 1}
                    ).encode()
                    + b"\n"
                )
                await writer.drain()
                await asyncio.sleep(0.1)  # admitted; batch still stalled
                writer.transport.abort()
                # Bounded wait: a daemon whose dispatcher died never
                # answers, and this must fail, not hang the suite.
                replies = await asyncio.wait_for(
                    _send_all(
                        host,
                        port,
                        [{"id": "after", "k": 4, "budget": 40, "seed": 2}],
                    ),
                    timeout=30,
                )
            finally:
                # Also bounded: shutdown drains connection tasks that
                # never settle if the dispatcher died.
                await asyncio.wait_for(daemon.shutdown(), timeout=30)
            return replies, daemon.admission.snapshot()

        replies, counters = asyncio.run(scenario())
        assert replies["after"]["ok"], (
            "a disconnecting client must not stop the daemon serving"
        )
        # The orphaned request was admitted, so it was still solved and
        # settled — nothing dropped, counters balance.
        assert counters["admitted"] == 2
        assert counters["completed"] == 2
        assert counters["received"] == (
            counters["admitted"] + counters["shed"]
        )

    def test_multi_tenant_graphs_multiplex_one_batch(self, no_orphans):
        graph_a = facebook_like(120, seed=5)
        graph_b = facebook_like(90, seed=6)
        specs = [
            {"id": "a", "tenant": "alpha", "k": 4, "budget": 40, "seed": 1},
            {"id": "b", "tenant": "beta", "k": 4, "budget": 40, "seed": 2},
            {"id": "a2", "tenant": "alpha", "k": 5, "budget": 40, "seed": 3},
        ]
        direct_a = _direct_results(graph_a, [specs[0], specs[2]])
        direct_b = _direct_results(graph_b, [specs[1]])

        async def scenario():
            daemon = ServingDaemon(
                {"alpha": graph_a, "beta": graph_b},
                fault_plan=FaultPlan(stalls={1: 0.3}),
                **_daemon_kwargs(),
            )
            host, port = await daemon.start()
            try:
                replies = await _send_all(host, port, specs)
            finally:
                await daemon.shutdown()
            assert daemon.counters["batches"] == 1
            return replies

        replies = asyncio.run(scenario())
        _assert_reply_matches(replies["a"], direct_a[0])
        _assert_reply_matches(replies["a2"], direct_a[1])
        _assert_reply_matches(replies["b"], direct_b[0])
        assert replies["a"]["tenant"] == "alpha"
        assert replies["b"]["tenant"] == "beta"


# ----------------------------------------------------------------------
# Overload: deterministic shedding and queue timeouts
# ----------------------------------------------------------------------
class TestOverload:
    def test_burst_past_queue_bound_sheds_exact_tail(
        self, small_facebook, no_orphans
    ):
        """Six arrivals into a 3-deep queue with the dispatcher stalled:
        exactly arrivals 4-6 shed, in arrival order, typed
        ``kind="shed"`` — a pure function of the arrival script."""
        specs = _specs(6)

        async def scenario():
            daemon = ServingDaemon(
                small_facebook,
                max_queue=3,
                fault_plan=FaultPlan(stalls={NEXT_RPC: 1.0}),
                **_daemon_kwargs(),
            )
            host, port = await daemon.start()
            try:
                replies = await _send_all(host, port, specs)
            finally:
                await daemon.shutdown()
            return replies, daemon.admission.snapshot()

        replies, counters = asyncio.run(scenario())
        for admitted_id in ("r0", "r1", "r2"):
            assert replies[admitted_id]["ok"], replies[admitted_id]
        for shed_id in ("r3", "r4", "r5"):
            error = replies[shed_id]["error"]
            assert error["kind"] == "shed"
            assert "queue full" in error["message"]
        assert counters["received"] == 6
        assert counters["admitted"] == 3
        assert counters["shed"] == 3
        assert counters["completed"] == 3
        # Zero dropped-without-reply: every arrival is accounted for.
        assert counters["received"] == (
            counters["admitted"] + counters["shed"]
        )

    def test_queue_patience_rejects_with_queue_timeout(
        self, small_facebook, no_orphans
    ):
        specs = _specs(2)

        async def scenario():
            daemon = ServingDaemon(
                small_facebook,
                queue_timeout_s=0.05,
                fault_plan=FaultPlan(stalls={NEXT_RPC: 0.4}),
                **_daemon_kwargs(),
            )
            host, port = await daemon.start()
            try:
                replies = await _send_all(host, port, specs)
            finally:
                await daemon.shutdown()
            return replies, daemon.admission.snapshot()

        replies, counters = asyncio.run(scenario())
        for spec in specs:
            error = replies[spec["id"]]["error"]
            assert error["kind"] == "queue_timeout"
            assert "patience" in error["message"]
        assert counters["queue_timeouts"] == 2
        assert counters["completed"] == 0

    def test_tenant_inflight_limit_protects_other_tenants(
        self, small_facebook, no_orphans
    ):
        specs = [
            {"id": "h1", "k": 4, "budget": 40, "seed": 1},
            {"id": "h2", "k": 4, "budget": 40, "seed": 2},
            {"id": "h3", "k": 4, "budget": 40, "seed": 3},  # over the cap
            {"id": "ok", "tenant": "quiet", "k": 4, "budget": 40, "seed": 4},
        ]

        async def scenario():
            daemon = ServingDaemon(
                {"default": small_facebook, "quiet": small_facebook},
                max_inflight_per_tenant=2,
                fault_plan=FaultPlan(stalls={NEXT_RPC: 0.8}),
                **_daemon_kwargs(),
            )
            host, port = await daemon.start()
            try:
                replies = await _send_all(host, port, specs)
            finally:
                await daemon.shutdown()
            return replies

        replies = asyncio.run(scenario())
        assert replies["h1"]["ok"] and replies["h2"]["ok"]
        error = replies["h3"]["error"]
        assert error["kind"] == "shed"
        assert "in-flight limit" in error["message"]
        assert replies["ok"]["ok"], "the quiet tenant must not be shed"

    def test_deadline_expired_in_queue_fails_without_a_solve(
        self, small_facebook, no_orphans
    ):
        specs = [
            {"id": "late", "k": 4, "budget": 40, "seed": 1,
             "deadline_s": 0.05},
            {"id": "fine", "k": 4, "budget": 40, "seed": 2},
        ]

        async def scenario():
            daemon = ServingDaemon(
                small_facebook,
                fault_plan=FaultPlan(stalls={NEXT_RPC: 0.4}),
                **_daemon_kwargs(),
            )
            host, port = await daemon.start()
            try:
                replies = await _send_all(host, port, specs)
            finally:
                await daemon.shutdown()
            return replies, daemon.admission.snapshot()

        replies, counters = asyncio.run(scenario())
        assert replies["late"]["error"]["kind"] == "deadline"
        assert replies["fine"]["ok"]
        assert counters["deadline_missed"] == 1


# ----------------------------------------------------------------------
# SLO-inverted routing
# ----------------------------------------------------------------------
class TestSLORouting:
    def test_slo_request_records_the_full_contract(
        self, small_facebook, no_orphans
    ):
        async def scenario():
            daemon = ServingDaemon(small_facebook, **_daemon_kwargs())
            host, port = await daemon.start()
            try:
                replies = await _send_all(
                    host,
                    port,
                    [{"id": "s", "k": 5, "slo_s": 5.0, "seed": 9}],
                )
            finally:
                await daemon.shutdown()
            return replies, daemon.calibrator

        replies, calibrator = asyncio.run(scenario())
        reply = replies["s"]
        assert reply["ok"], reply
        extra = reply["extra"]
        assert extra["slo_s"] == 5.0
        assert extra["slo_budget"] >= calibrator.min_budget
        assert extra["slo_mode"] in ("serial", "solve", "stage")
        assert extra["slo_promised_s"] > 0
        # Achieved latency is end to end (queue + dispatch + solve), so
        # it can only exceed the solve's own wall clock.
        assert extra["slo_achieved_s"] >= reply["stats"]["elapsed_s"]
        assert reply["stats"]["samples_drawn"] == extra["slo_budget"]
        # The completed solve fed the calibration.
        assert sum(calibrator.observations.values()) == 1

    def test_tight_slo_serves_the_floor_and_flags_overrun(
        self, small_facebook, no_orphans
    ):
        async def scenario():
            daemon = ServingDaemon(small_facebook, **_daemon_kwargs())
            host, port = await daemon.start()
            try:
                replies = await _send_all(
                    host,
                    port,
                    [{"id": "t", "k": 5, "slo_s": 1e-7, "seed": 9}],
                )
            finally:
                await daemon.shutdown()
            return replies, daemon.calibrator.min_budget

        replies, floor = asyncio.run(scenario())
        reply = replies["t"]
        assert reply["ok"], "an unmeetable SLO is served, not refused"
        assert reply["extra"]["slo_budget"] == floor
        assert reply["extra"]["slo_overrun"] is True

    def test_slo_and_budget_are_mutually_exclusive(
        self, small_facebook, no_orphans
    ):
        async def scenario():
            daemon = ServingDaemon(small_facebook, **_daemon_kwargs())
            host, port = await daemon.start()
            try:
                return await _send_all(
                    host,
                    port,
                    [
                        {"id": "x", "k": 5, "slo_s": 1.0, "budget": 100},
                        {"id": "y", "k": 3, "slo_s": 1.0,
                         "solver": "dgreedy"},
                        {"id": "z", "k": 5, "slo_s": -2.0},
                        {"id": "u", "k": 5, "slo_s": 1.0,
                         "solver": "no-such-solver"},
                    ],
                )
            finally:
                await daemon.shutdown()

        replies = asyncio.run(scenario())
        assert replies["x"]["error"]["kind"] == "invalid"
        assert "mutually exclusive" in replies["x"]["error"]["message"]
        assert replies["y"]["error"]["kind"] == "invalid"
        assert "no budget" in replies["y"]["error"]["message"]
        assert replies["z"]["error"]["kind"] == "invalid"
        # An unknown solver on the SLO path is a typed rejection, not a
        # dropped connection (the handler must survive to answer it).
        assert replies["u"]["error"]["kind"] == "invalid"
        assert "unknown solver" in replies["u"]["error"]["message"]

    def test_calibrator_ewma_tracks_observations(self):
        calibrator = LatencyCalibrator(alpha=0.5)
        cold = calibrator.rate("compiled", "serial")
        calibrator.observe("compiled", "serial", n=100, budget=100,
                           elapsed_s=0.001)
        warm = calibrator.rate("compiled", "serial")
        assert warm != cold
        assert warm == pytest.approx(0.5 * (100 * 100 / 0.001) + 0.5 * cold)
        # Degenerate observations are ignored.
        calibrator.observe("compiled", "serial", n=0, budget=100,
                           elapsed_s=0.001)
        assert calibrator.rate("compiled", "serial") == warm
        with pytest.raises(ValueError, match="alpha"):
            LatencyCalibrator(alpha=0.0)


# ----------------------------------------------------------------------
# Request validation at the front door
# ----------------------------------------------------------------------
class TestRequestValidation:
    def test_unknown_keys_and_tenants_are_typed_invalid(
        self, small_facebook, no_orphans
    ):
        async def scenario():
            daemon = ServingDaemon(small_facebook, **_daemon_kwargs())
            host, port = await daemon.start()
            try:
                return await _send_all(
                    host,
                    port,
                    [
                        {"id": "typo", "k": 5, "budgett": 40},
                        {"id": "ghost", "k": 5, "budget": 40,
                         "tenant": "ghost"},
                        {"id": "nok"},
                        "}{ not json",
                        '["a", "list"]',
                    ],
                )
            finally:
                await daemon.shutdown()

        replies = asyncio.run(scenario())
        typo = replies["typo"]["error"]
        assert typo["kind"] == "invalid"
        assert "'budgett'" in typo["message"]
        assert "valid keys" in typo["message"]
        assert replies["ghost"]["error"]["kind"] == "invalid"
        assert "ghost" in replies["ghost"]["error"]["message"]
        assert replies["nok"]["error"]["kind"] == "invalid"
        # Unparseable lines are answered by line number.
        assert replies[4]["error"]["kind"] == "invalid"
        assert "invalid JSON" in replies[4]["error"]["message"]
        assert replies[5]["error"]["kind"] == "invalid"
        assert "JSON object" in replies[5]["error"]["message"]


# ----------------------------------------------------------------------
# Lifecycle: drain, degraded serving, health endpoints
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_drain_answers_admitted_and_sheds_new(
        self, small_facebook, no_orphans
    ):
        async def scenario():
            daemon = ServingDaemon(
                small_facebook,
                fault_plan=FaultPlan(stalls={NEXT_RPC: 0.6}),
                **_daemon_kwargs(),
            )
            host, port = await daemon.start()
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(
                json.dumps({"id": "kept", "k": 4, "budget": 40,
                            "seed": 1}).encode() + b"\n"
            )
            await writer.drain()
            await asyncio.sleep(0.1)  # let the arrival be admitted
            shutdown = asyncio.create_task(daemon.shutdown())
            await asyncio.sleep(0.05)  # shutdown has set draining
            assert daemon.draining
            writer.write(
                json.dumps({"id": "late", "k": 4, "budget": 40,
                            "seed": 2}).encode() + b"\n"
            )
            await writer.drain()
            writer.write_eof()
            replies = {}
            while True:
                line = await reader.readline()
                if not line:
                    break
                reply = json.loads(line)
                replies[reply["id"]] = reply
            writer.close()
            await writer.wait_closed()
            await shutdown
            return replies

        replies = asyncio.run(scenario())
        assert replies["kept"]["ok"], "admitted work must be answered"
        assert replies["late"]["error"]["kind"] == "shed"
        assert "draining" in replies["late"]["error"]["message"]

    def test_shutdown_leaves_no_pool_processes(
        self, small_facebook, no_orphans
    ):
        async def scenario():
            daemon = ServingDaemon(small_facebook, **_daemon_kwargs())
            host, port = await daemon.start()
            replies = await _send_all(
                host, port, [{"id": "w", "k": 4, "budget": 40, "seed": 7}]
            )
            assert replies["w"]["ok"]
            await daemon.shutdown()
            # Double shutdown is a no-op, not an error.
            await daemon.shutdown()

        asyncio.run(scenario())
        # no_orphans asserts every pool worker is gone.

    def test_health_endpoints(self, small_facebook, no_orphans):
        async def scenario():
            daemon = ServingDaemon(small_facebook, **_daemon_kwargs())
            host, port = await daemon.start()
            try:
                health = await _http_get(host, port, "/healthz")
                ready = await _http_get(host, port, "/readyz")
                metrics = await _http_get(host, port, "/metrics")
                missing = await _http_get(host, port, "/nope")
                probe = await _http_request(
                    host, port, "/healthz", method="HEAD"
                )
            finally:
                await daemon.shutdown()
            return health, ready, metrics, missing, probe

        health, ready, metrics, missing, probe = asyncio.run(scenario())
        assert health == (
            200,
            health[1],
        ) and health[1]["status"] == "ok"
        assert health[1]["degraded"] is False
        assert health[1]["admission"]["received"] == 0
        assert ready[0] == 200 and ready[1]["ready"] is True
        assert metrics[0] == 200 and "calibration" in metrics[1]
        assert missing[0] == 404
        # HEAD: GET's status line and headers, but no body.
        code, head, body = probe
        assert code == 200
        assert b"Content-Length" in head
        assert body == b""

    def test_degraded_pool_keeps_serving_and_reports_it(
        self, small_facebook, no_orphans
    ):
        """Two kills against a 1-retry budget degrade the context; the
        daemon keeps answering (in-parent serial) and /healthz says so."""
        specs = _specs()
        direct = _direct_results(small_facebook, specs)

        async def scenario():
            plan = FaultPlan(kills=[(0, 1), (0, 3)], stalls={1: 0.3})
            daemon = ServingDaemon(
                small_facebook,
                mode="solve",
                max_retries=1,
                fault_plan=plan,
                **_daemon_kwargs(),
            )
            host, port = await daemon.start()
            try:
                replies = await _send_all(host, port, specs)
                health = await _http_get(host, port, "/healthz")
                degraded = daemon.context.degraded
            finally:
                # shutdown() discards the pools, which clears the flag —
                # capture it while the daemon is still serving.
                await daemon.shutdown()
            return replies, health, degraded

        replies, health, degraded_during = asyncio.run(scenario())
        for spec, result in zip(specs, direct):
            _assert_reply_matches(replies[spec["id"]], result)
        assert degraded_during
        assert health[1]["status"] == "degraded"
        assert health[1]["degraded"] is True


# ----------------------------------------------------------------------
# Admission controller (unit)
# ----------------------------------------------------------------------
def _entry(tenant="default", deadline_at=None, arrived_at=None):
    return PendingRequest(
        id=object(),
        tenant=tenant,
        spec={},
        future=None,
        arrived_at=time.monotonic() if arrived_at is None else arrived_at,
        deadline_at=deadline_at,
    )


class TestAdmissionController:
    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="max_queue"):
            AdmissionController(max_queue=0)
        with pytest.raises(ValueError, match="max_inflight_per_tenant"):
            AdmissionController(max_inflight_per_tenant=0)
        with pytest.raises(ValueError, match="queue_timeout_s"):
            AdmissionController(queue_timeout_s=0.0)

    def test_counters_balance_through_a_full_cycle(self):
        controller = AdmissionController(max_queue=2)
        entries = [_entry() for _ in range(3)]
        rejections = [
            controller.admit(entry) for entry in entries
        ]
        assert rejections[0] is None and rejections[1] is None
        assert isinstance(rejections[2], RequestFailure)
        assert rejections[2].kind == "shed"
        batch, rejected = controller.take_batch(8)
        assert [e is entry for e, entry in zip(batch, entries[:2])]
        assert rejected == []
        controller.settle(batch[0], ok=True)
        controller.settle(batch[1], ok=False)
        counters = controller.counters
        assert counters["received"] == 3
        assert counters["received"] == counters["admitted"] + counters["shed"]
        assert counters["completed"] == 1 and counters["failed"] == 1
        assert controller.inflight("default") == 0

    def test_draining_sheds_everything(self):
        controller = AdmissionController()
        rejection = controller.admit(_entry(), draining=True)
        assert rejection.kind == "shed"
        assert "draining" in rejection

    def test_take_batch_sweeps_stale_entries(self):
        controller = AdmissionController(queue_timeout_s=0.5)
        now = time.monotonic()
        stale = _entry(arrived_at=now - 1.0)
        expired = _entry(deadline_at=now - 0.1)
        fresh = _entry()
        for entry in (stale, expired, fresh):
            assert controller.admit(entry) is None
        batch, rejected = controller.take_batch(8, now=now)
        assert batch == [fresh]
        kinds = {id(entry): failure.kind for entry, failure in rejected}
        assert kinds[id(stale)] == "queue_timeout"
        assert kinds[id(expired)] == "deadline"
        assert controller.counters["queue_timeouts"] == 1
        assert controller.counters["deadline_missed"] == 1
        assert controller.inflight("default") == 1  # only the batch entry


# ----------------------------------------------------------------------
# CLI: waso serve end to end
# ----------------------------------------------------------------------
class TestServeCli:
    def test_serve_drains_on_sigint(self, tmp_path, no_orphans):
        graph_path = tmp_path / "g.json"
        save_json(facebook_like(60, seed=3), str(graph_path))
        env = dict(
            os.environ,
            PYTHONPATH=str(Path(repro.__file__).parents[1]),
        )
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                str(graph_path),
                "--workers",
                "2",
                "--port",
                "0",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            announce = proc.stdout.readline().strip()
            assert announce.startswith("serving on ")
            host, port = announce.rsplit(" ", 1)[-1].split(":")
            with socket.create_connection(
                (host, int(port)), timeout=30
            ) as conn:
                conn.sendall(
                    json.dumps(
                        {"id": "cli", "k": 4, "budget": 48, "seed": 5}
                    ).encode()
                    + b"\n"
                )
                conn.shutdown(socket.SHUT_WR)
                stream = conn.makefile("r")
                reply = json.loads(stream.readline())
            assert reply["ok"] and reply["id"] == "cli"
            proc.send_signal(signal.SIGINT)
            out, err = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, err
        assert "draining..." in out
        assert "drained; bye" in out

    def test_tenant_flag_validation(self, tmp_path):
        from repro.cli import main

        graph_path = tmp_path / "g.json"
        save_json(facebook_like(30, seed=1), str(graph_path))
        with pytest.raises(SystemExit, match="NAME=GRAPH"):
            main(["serve", str(graph_path), "--tenant", "nonsense"])


# ----------------------------------------------------------------------
# kind="mutate": streaming graph deltas at the dispatch boundary
# ----------------------------------------------------------------------
class TestMutate:
    """``kind="mutate"`` lines patch a tenant's graph between batches."""

    def _graph(self):
        # Fresh per-test graph: mutations write into it, so the
        # session-scoped fixtures must never serve as tenants here.
        return facebook_like(n=60, seed=11)

    def _solve_spec(self, request_id):
        return {
            "id": request_id,
            "k": 5,
            "budget": 40,
            "m": 4,
            "stages": 2,
            "seed": 33,
        }

    def test_mutate_patches_between_batches(self, no_orphans):
        graph = self._graph()
        anchor = next(iter(graph.nodes()))
        deltas = [
            ["add_node", "zz", 1.2, 0.5],
            ["add_edge", "zz", anchor, 0.4],
        ]

        async def scenario():
            daemon = ServingDaemon(
                graph, mode="stage", **_daemon_kwargs()
            )
            host, port = await daemon.start()
            try:
                first = await _send_all(
                    host, port, [self._solve_spec("s1")]
                )
                mutated = await _send_all(
                    host, port,
                    [{"id": "m1", "kind": "mutate", "deltas": deltas}],
                )
                second = await _send_all(
                    host, port, [self._solve_spec("s2")]
                )
            finally:
                await daemon.shutdown()
            return first["s1"], mutated["m1"], second["s2"]

        cold, mutate, warm = asyncio.run(scenario())
        assert cold["ok"] and cold["extra"]["graph_shipped"]
        assert mutate == {
            "id": "m1",
            "ok": True,
            "tenant": "default",
            "kind": "mutate",
            "generation": 1,
            "applied": 2,
        }
        # The warm solve after the mutation shipped a sparse patch, not
        # a re-install — and solved the *mutated* graph: bit-identical
        # to a direct context over an identically-mutated fresh graph.
        assert warm["ok"], warm
        assert not warm["extra"]["graph_shipped"]
        assert warm["extra"].get("graph_installs", 0) == 0
        assert warm["extra"]["graph_patch_bytes"] > 0
        direct_graph = facebook_like(n=60, seed=11)
        direct_graph.add_node("zz", interest=1.2, lam=0.5)
        direct_graph.add_edge("zz", anchor, 0.4)
        [direct] = _direct_results(
            direct_graph, [self._solve_spec("s2")], mode="stage"
        )
        _assert_reply_matches(warm, direct)

    def test_mutate_validation(self, no_orphans):
        graph = self._graph()

        async def scenario():
            daemon = ServingDaemon(graph, **_daemon_kwargs())
            host, port = await daemon.start()
            try:
                replies = await _send_all(
                    host, port,
                    [
                        {"id": "t", "kind": "mutate", "tenant": "nope",
                         "deltas": [["add_node", "a", 1.0, None]]},
                        {"id": "d", "kind": "mutate", "deltas": []},
                        {"id": "x", "kind": "mutate", "deltas": "zap"},
                        {"id": "k", "kind": "mutate", "budget": 4,
                         "deltas": [["add_node", "a", 1.0, None]]},
                        {"id": "b", "kind": "mutate",
                         "deltas": [["remove_edge", "no-such", "node"]]},
                    ],
                )
            finally:
                await daemon.shutdown()
            return replies

        replies = asyncio.run(scenario())
        for request_id in ("t", "d", "x", "k"):
            assert not replies[request_id]["ok"]
            assert replies[request_id]["error"]["kind"] == "invalid"
        assert not replies["b"]["ok"]
        assert replies["b"]["error"]["kind"] == "mutate_error"

    def test_mutate_shed_while_draining(self, no_orphans):
        graph = self._graph()

        async def scenario():
            daemon = ServingDaemon(graph, **_daemon_kwargs())
            host, port = await daemon.start()
            reader, writer = await asyncio.open_connection(host, port)
            daemon._draining = True  # as shutdown() flips it mid-drain
            writer.write(
                json.dumps(
                    {"id": "m", "kind": "mutate",
                     "deltas": [["add_node", "a", 1.0, None]]}
                ).encode() + b"\n"
            )
            await writer.drain()
            writer.write_eof()
            line = await reader.readline()
            writer.close()
            await writer.wait_closed()
            daemon._draining = False
            await daemon.shutdown()
            return json.loads(line)

        reply = asyncio.run(scenario())
        assert not reply["ok"]
        assert reply["error"]["kind"] == "shed"
