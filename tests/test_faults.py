"""Chaos differential suite for the self-healing worker pools.

Every test here injects a *deterministic* fault — a worker SIGKILLed
before a named RPC, a reply dropped or delayed past a deadline — through
:class:`repro.parallel.faults.FaultPlan`, and asserts the recovery
machinery's exact behaviour:

* results after an injected crash are **bit-identical** to the
  fault-free run at every dispatch position (the seeds travel with the
  work, so a retried dispatch redraws the same samples);
* recovery accounting (``worker_restarts`` / ``chunk_retries`` /
  ``degraded_to_serial`` / ``deadline_missed``) reports the exact event
  counts, not just "something happened";
* an expired deadline fails its request cleanly into
  :class:`~repro.exceptions.BatchExecutionError` while the rest of the
  batch completes;
* ``close()`` stays idempotent and hang-free with every worker dead,
  and no orphan processes survive it.

The suite is part of tier 1 (small graphs, small budgets) and is also
re-runnable standalone via the registered ``chaos`` marker::

    PYTHONPATH=src python -m pytest tests/test_faults.py -m chaos
"""

from __future__ import annotations

import json
import multiprocessing
import time

import pytest

from repro.algorithms.cbas_nd import CBASND
from repro.cli import main
from repro.core.problem import WASOProblem
from repro.exceptions import BatchExecutionError, RequestFailure
from repro.graph.io import save_json
from repro.graph.social_graph import SocialGraph
from repro.parallel import (
    NEXT_RPC,
    ArrivalScript,
    FaultPlan,
    ResidentSolvePool,
    ShardedStageExecutor,
    StagePool,
)
from repro.runtime import ExecutionContext, SolveRequest

pytestmark = pytest.mark.chaos

#: extra-dict keys that describe pool warmth, shipping, or recovery
#: rather than the solve itself — under fault injection the re-shipping
#: bytes and recovery counters legitimately differ from the fault-free
#: run, while everything else must stay bit-identical.
_VOLATILE_KEYS = frozenset(
    {
        "graph_shipped",
        "graph_installs",
        "batch_payload_bytes",
        "shard_rpcs",
        "shard_patch_bytes",
        "graph_patch_bytes",
        "stage_workers",
        "failed_requests",
        "worker_restarts",
        "chunk_retries",
        "degraded_to_serial",
        "deadline_missed",
    }
)


def _assert_same_result(faulted, clean) -> None:
    """``faulted`` must be bit-identical to ``clean`` (volatile keys aside)."""
    assert faulted.solution.members == clean.solution.members
    assert faulted.willingness == clean.willingness
    assert faulted.stats.samples_drawn == clean.stats.samples_drawn
    assert faulted.stats.failed_samples == clean.stats.failed_samples
    assert faulted.stats.stages == clean.stats.stages
    strip = lambda extra: {  # noqa: E731
        key: value
        for key, value in extra.items()
        if key not in _VOLATILE_KEYS
    }
    assert strip(faulted.stats.extra) == strip(clean.stats.extra)


@pytest.fixture
def no_orphans():
    """Assert the test leaves no worker processes behind."""
    before = set(multiprocessing.active_children())
    yield
    deadline = time.monotonic() + 5.0
    while True:
        leaked = set(multiprocessing.active_children()) - before
        if not leaked:
            return
        if time.monotonic() >= deadline:
            raise AssertionError(f"orphan worker processes: {leaked}")
        time.sleep(0.02)


def _requests(graph, engine: str = "compiled") -> "list[SolveRequest]":
    problem = WASOProblem(graph=graph, k=5)
    kwargs = {"budget": 40, "m": 4, "stages": 2, "engine": engine}
    return [
        SolveRequest(problem, "cbas-nd", seed, dict(kwargs))
        for seed in (11, 12, 13, 14)
    ]


def _solve_many(graph, plan=None, engine="compiled", **context_kwargs):
    """One forced solve-mode batch on a fresh 2-worker context."""
    requests = _requests(graph, engine)
    with ExecutionContext(workers=2, cpu_count=4, **context_kwargs) as context:
        if plan is not None:
            context.solve_pool().fault_plan = plan
        results = context.solve_many(requests, mode="solve")
    return results


# ----------------------------------------------------------------------
# FaultPlan itself
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_faults_fire_exactly_once(self):
        plan = FaultPlan(kills=[(0, NEXT_RPC)], drops=[(1, 3)])
        assert not plan.kill_before_send(1, 1)
        assert plan.kill_before_send(0, 5)
        assert not plan.kill_before_send(0, 6)  # already fired
        assert plan.reply_disposition(1, 3) == "drop"
        assert plan.reply_disposition(1, 3) is None
        assert plan.log == [("kill", 0, 5), ("drop", 1, 3)]

    def test_delay_disposition(self):
        plan = FaultPlan(delays={(0, 2): 1.5})
        assert plan.reply_disposition(0, 1) is None
        assert plan.reply_disposition(0, 2) == 1.5
        assert plan.reply_disposition(0, 2) is None
        assert plan.log == [("delay", 0, 2)]

    def test_seeded_plans_are_reproducible(self):
        first = FaultPlan.seeded(7, workers=4, rpcs=6, kills=2, drops=1)
        second = FaultPlan.seeded(7, workers=4, rpcs=6, kills=2, drops=1)
        assert first._kills == second._kills
        assert first._drops == second._drops
        other = FaultPlan.seeded(8, workers=4, rpcs=6, kills=2, drops=1)
        assert (first._kills, first._drops) != (other._kills, other._drops)

    def test_seeded_rejects_overfull_plans(self):
        with pytest.raises(ValueError, match="cannot place"):
            FaultPlan.seeded(1, workers=2, rpcs=2, kills=5)

    def test_queue_stalls_fire_exactly_once(self):
        plan = FaultPlan(stalls={1: 0.25, NEXT_RPC: 0.5})
        # NEXT_RPC matches any batch; specific keys win their own batch.
        assert plan.queue_stall(1) in (0.25, 0.5)
        remaining = plan.queue_stall(1)
        assert remaining in (0.25, 0.5)
        assert plan.queue_stall(1) is None  # both entries consumed
        assert [event[0] for event in plan.log] == ["stall", "stall"]

    def test_queue_stall_ignores_other_batches(self):
        plan = FaultPlan(stalls={3: 1.0})
        assert plan.queue_stall(1) is None
        assert plan.queue_stall(2) is None
        assert plan.queue_stall(3) == 1.0
        assert plan.queue_stall(3) is None
        assert plan.log == [("stall", "queue", 3)]


# ----------------------------------------------------------------------
# ArrivalScript: deterministic open-loop arrival schedules
# ----------------------------------------------------------------------
class TestArrivalScript:
    def test_burst_arrives_at_once(self):
        script = ArrivalScript.burst(4)
        assert script.offsets == (0.0, 0.0, 0.0, 0.0)
        assert len(script) == 4

    def test_uniform_spacing(self):
        script = ArrivalScript.uniform(3, rate=10.0)
        assert script.offsets == pytest.approx((0.0, 0.1, 0.2))

    def test_poisson_is_seeded_and_sorted(self):
        first = ArrivalScript.poisson(7, count=20, rate=50.0)
        second = ArrivalScript.poisson(7, count=20, rate=50.0)
        assert first.offsets == second.offsets
        assert list(first.offsets) == sorted(first.offsets)
        other = ArrivalScript.poisson(8, count=20, rate=50.0)
        assert first.offsets != other.offsets

    def test_offsets_validated(self):
        with pytest.raises(ValueError, match="non-negative"):
            ArrivalScript([0.0, -0.1])


# ----------------------------------------------------------------------
# Structured failure records
# ----------------------------------------------------------------------
class TestRequestFailure:
    def test_string_compatible(self):
        failure = RequestFailure(
            "Traceback ...\nInfeasibleProblemError: no component",
            kind="solver_error",
            retries=0,
            index=3,
        )
        assert "Infeasible" in failure  # historical str treatment
        assert failure.splitlines()[-1].startswith("Infeasible")
        assert failure.kind == "solver_error"
        assert failure.retries == 0
        assert failure.index == 3

    def test_kind_is_validated(self):
        with pytest.raises(ValueError, match="kind must be one of"):
            RequestFailure("boom", kind="cosmic_rays")

    def test_batch_error_coerces_and_labels(self):
        crash = RequestFailure("died", kind="worker_crash", retries=2, index=0)
        error = BatchExecutionError({0: crash, 1: "plain traceback"}, [None, None])
        assert error.failures[0].kind == "worker_crash"
        assert error.failures[0].retries == 2
        assert error.failures[1].kind == "solver_error"  # coerced default
        assert error.failures[1].index == 1
        assert "[worker_crash]" in str(error)


# ----------------------------------------------------------------------
# Solve-level pool: crash recovery is invisible in results
# ----------------------------------------------------------------------
class TestSolvePoolRecovery:
    # With 2 workers and 4 forced-solve requests, each worker receives
    # exactly two RPCs: seq 1 = graph install, seq 2 = its chunk.
    @pytest.mark.parametrize("worker", [0, 1])
    @pytest.mark.parametrize("rpc", [1, 2])
    def test_kill_at_every_dispatch_position_is_bit_identical(
        self, small_facebook, no_orphans, worker, rpc
    ):
        clean = _solve_many(small_facebook)
        plan = FaultPlan(kills=[(worker, rpc)])
        faulted = _solve_many(small_facebook, plan=plan)
        assert plan.log == [("kill", worker, rpc)]
        for fault_result, clean_result in zip(faulted, clean):
            _assert_same_result(fault_result, clean_result)
            # Exact recovery accounting: one respawn, one chunk retry,
            # and the respawned worker was re-shipped the graph (one
            # install per worker cold, plus the re-ship).
            assert fault_result.stats.extra["worker_restarts"] == 1
            assert fault_result.stats.extra["chunk_retries"] == 1
            assert fault_result.stats.extra["graph_installs"] == 3
        for clean_result in clean:
            assert "worker_restarts" not in clean_result.stats.extra
            assert clean_result.stats.extra["graph_installs"] == 2

    def test_reference_engine_recovers_too(self, small_facebook, no_orphans):
        clean = _solve_many(small_facebook, engine="reference")
        plan = FaultPlan(kills=[(0, NEXT_RPC)])
        faulted = _solve_many(small_facebook, plan=plan, engine="reference")
        assert plan.log, "the injected kill never fired"
        for fault_result, clean_result in zip(faulted, clean):
            _assert_same_result(fault_result, clean_result)
            assert fault_result.stats.extra["worker_restarts"] == 1
            assert fault_result.stats.extra["chunk_retries"] == 1

    def test_vector_engine_recovers_too(self, small_facebook, no_orphans):
        """The numpy stage-batched engine rides the same recovery path:
        a killed worker's chunk retries bit-identically (the vector
        engine is bit-reproducible within the engine for any worker
        count, so the redraw matches)."""
        clean = _solve_many(small_facebook, engine="vector")
        plan = FaultPlan(kills=[(0, NEXT_RPC)])
        faulted = _solve_many(small_facebook, plan=plan, engine="vector")
        assert plan.log, "the injected kill never fired"
        for fault_result, clean_result in zip(faulted, clean):
            _assert_same_result(fault_result, clean_result)
            assert fault_result.stats.extra["worker_restarts"] == 1
            assert fault_result.stats.extra["chunk_retries"] == 1
            # Still a vector-engine solve end to end, not a silent
            # fallback to another engine during recovery.
            assert fault_result.stats.extra.get("vector_batch_draws", 0) == (
                clean_result.stats.extra.get("vector_batch_draws", 0)
            )

    def test_exhausted_retries_degrade_to_serial(
        self, small_facebook, no_orphans
    ):
        """Two kills against a 1-retry budget: the chunk's requests fall
        back to in-parent execution, bit-identically, and the router goes
        serial until the pools are discarded."""
        clean = _solve_many(small_facebook)
        # Two NEXT_RPC kills would both fire during the *initial*
        # dispatch (install then chunk, the worker already dead), so the
        # second kill is pinned to the retry's install re-send: seqs 1-2
        # are the first install+chunk, seq 3 the recovery install.
        plan = FaultPlan(kills=[(0, 1), (0, 3)])
        requests = _requests(small_facebook)
        problem = requests[0].problem
        with ExecutionContext(workers=2, cpu_count=4, max_retries=1) as context:
            context.solve_pool().fault_plan = plan
            results = context.solve_many(requests, mode="solve")
            assert len(plan.log) == 2
            for fault_result, clean_result in zip(results, clean):
                _assert_same_result(fault_result, clean_result)
            # Worker 0's chunk held requests 0 and 2 (round-robin): both
            # re-ran serially in-parent after the second kill.
            for index in (0, 2):
                extra = results[index].stats.extra
                assert extra["worker_restarts"] == 2
                assert extra["chunk_retries"] == 1
                assert extra["degraded_to_serial"] == 2
            assert not context.solve_pool().healthy
            # Degraded context: the auto-router refuses the pools...
            assert (
                context.resolve_mode(problem, budget=10_000, batch_size=4)
                == "serial"
            )
            context.close()
            # ... until close() discards them and trust is restored.
            assert (
                context.resolve_mode(problem, budget=10_000, batch_size=4)
                != "serial"
            )


# ----------------------------------------------------------------------
# Deadlines
# ----------------------------------------------------------------------
class TestDeadlines:
    @pytest.mark.parametrize("disposition", ["delay", "drop"])
    def test_expired_dispatch_fails_cleanly(
        self, small_facebook, no_orphans, disposition
    ):
        """A reply held (or lost) past the deadline cancels only the
        expired request; its live chunk-mate is retried and the batch
        completes around the failure."""
        clean = _solve_many(small_facebook)
        requests = _requests(small_facebook)
        requests[0].deadline_s = 0.5  # worker 0's chunk: requests 0 and 2
        if disposition == "delay":
            plan = FaultPlan(delays={(0, NEXT_RPC): 30.0})
        else:
            plan = FaultPlan(drops=[(0, NEXT_RPC)])
        with ExecutionContext(workers=2, cpu_count=4) as context:
            context.solve_pool().fault_plan = plan
            with pytest.raises(BatchExecutionError) as excinfo:
                context.solve_many(requests, mode="solve")
        error = excinfo.value
        assert plan.log, "the injected fault never fired"
        assert sorted(error.failures) == [0]
        assert error.failures[0].kind == "deadline"
        assert "[deadline]" in str(error)
        assert error.results[0] is None
        # The rest of the batch completed, bit-identically.
        for index in (1, 2, 3):
            _assert_same_result(error.results[index], clean[index])
        extra = error.results[2].stats.extra
        assert extra["deadline_missed"] == 1
        assert extra["worker_restarts"] == 1  # the cancellation kill
        assert extra["chunk_retries"] == 1  # request 2 was re-dispatched

    def test_predispatch_expiry_on_the_serial_path(self, small_facebook):
        problem = WASOProblem(graph=small_facebook, k=5)
        requests = [
            SolveRequest(problem, "dgreedy", None, {}, deadline_s=1e-9),
            SolveRequest(problem, "dgreedy", None, {}),
        ]
        with ExecutionContext(workers=1) as context:
            with pytest.raises(BatchExecutionError) as excinfo:
                context.solve_many(requests)
        error = excinfo.value
        assert sorted(error.failures) == [0]
        assert error.failures[0].kind == "deadline"
        assert error.results[1] is not None

    def test_deadline_must_be_positive(self, small_facebook):
        problem = WASOProblem(graph=small_facebook, k=5)
        with pytest.raises(ValueError, match="deadline_s"):
            SolveRequest(problem, "dgreedy", None, {}, deadline_s=0.0)


# ----------------------------------------------------------------------
# Stage-level pool: mid-stage crashes and in-parent fallback
# ----------------------------------------------------------------------
def _stage_solve(graph, pool, engine: str = "compiled") -> "tuple":
    problem = WASOProblem(graph=graph, k=5)
    executor = ShardedStageExecutor(pool=pool)
    solver = CBASND(
        budget=120, m=6, stages=3, engine=engine, executor=executor
    )
    return solver.solve(problem, rng=4)


class TestStagePoolRecovery:
    # A fresh 2-worker pool sees, per worker: seq 1 = graph install,
    # seq 2 = solve spec, seq 3..5 = the three stage dispatches.
    @pytest.mark.parametrize("worker", [0, 1])
    @pytest.mark.parametrize("rpc", [1, 2, 3, 4, 5])
    def test_kill_at_every_rpc_position_is_bit_identical(
        self, small_facebook, no_orphans, worker, rpc
    ):
        with StagePool(2) as pool:
            clean = _stage_solve(small_facebook, pool)
        plan = FaultPlan(kills=[(worker, rpc)])
        with StagePool(2) as pool:
            pool.fault_plan = plan
            faulted = _stage_solve(small_facebook, pool)
            assert plan.log == [("kill", worker, rpc)]
            assert pool.worker_restarts == 1
            assert pool.healthy
        _assert_same_result(faulted, clean)
        if rpc >= 3:  # mid-stage: the shard retry is visible in stats
            assert faulted.stats.extra["worker_restarts"] == 1
            assert faulted.stats.extra["chunk_retries"] == 1
        assert "worker_restarts" not in clean.stats.extra

    def test_vector_engine_shard_recovery_is_bit_identical(
        self, small_facebook, no_orphans
    ):
        """A worker killed mid-stage under ``engine="vector"`` respawns,
        re-installs the vector graph, and redraws its shard to the same
        bits — the numpy residency path heals like the compiled one."""
        with StagePool(2) as pool:
            clean = _stage_solve(small_facebook, pool, engine="vector")
        plan = FaultPlan(kills=[(0, 3)])  # first stage dispatch
        with StagePool(2) as pool:
            pool.fault_plan = plan
            faulted = _stage_solve(small_facebook, pool, engine="vector")
            assert plan.log == [("kill", 0, 3)]
            assert pool.worker_restarts == 1
            assert pool.healthy
        _assert_same_result(faulted, clean)
        assert faulted.stats.extra["worker_restarts"] == 1
        assert faulted.stats.extra["chunk_retries"] == 1
        assert faulted.stats.extra.get("vector_batch_draws", 0) == (
            clean.stats.extra.get("vector_batch_draws", 0)
        )

    def test_exhausted_shard_falls_back_in_parent(
        self, small_facebook, no_orphans
    ):
        """With a zero retry budget a mid-stage crash runs the shard in
        the parent — still bit-identical — and the worker is healed
        lazily before the next stage."""
        with StagePool(2) as pool:
            clean = _stage_solve(small_facebook, pool)
        plan = FaultPlan(kills=[(0, 3)])  # first stage dispatch
        with StagePool(2, max_retries=0) as pool:
            pool.fault_plan = plan
            faulted = _stage_solve(small_facebook, pool)
            assert plan.log == [("kill", 0, 3)]
            assert pool.fallback_shards == 1
            assert not pool.healthy
        _assert_same_result(faulted, clean)
        assert faulted.stats.extra["worker_restarts"] == 1
        assert faulted.stats.extra["degraded_to_serial"] == 1
        assert "chunk_retries" not in faulted.stats.extra


# ----------------------------------------------------------------------
# Shutdown hygiene
# ----------------------------------------------------------------------
class TestCloseHygiene:
    @pytest.mark.parametrize("pool_cls", [ResidentSolvePool, StagePool])
    def test_close_is_idempotent_with_all_workers_dead(
        self, no_orphans, pool_cls
    ):
        pool = pool_cls(2)
        for proc in pool._procs:
            proc.kill()
        for proc in pool._procs:
            proc.join(timeout=5.0)
        start = time.monotonic()
        pool.close()
        pool.close()  # idempotent
        assert time.monotonic() - start < 5.0  # never hangs

    def test_context_close_with_dead_workers(self, no_orphans):
        context = ExecutionContext(workers=2)
        pool = context.solve_pool()
        for proc in pool._procs:
            proc.kill()
        context.close()
        context.close()


# ----------------------------------------------------------------------
# CLI: --timeout-s / --max-retries and partial-failure records
# ----------------------------------------------------------------------
class TestCli:
    @pytest.fixture
    def two_triangles_file(self, tmp_path):
        graph = SocialGraph()
        for node, interest in enumerate([1.0, 1.0, 1.0, 5.0, 5.0, 5.0]):
            graph.add_node(node, interest=interest)
        for u, v in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]:
            graph.add_edge(u, v, 1.0)
        path = tmp_path / "g.json"
        save_json(graph, str(path))
        return path

    def test_partial_failure_prints_jsonl_records(
        self, two_triangles_file, tmp_path, capsys
    ):
        requests = tmp_path / "r.jsonl"
        requests.write_text(
            '{"k": 3, "solver": "dgreedy", "seed": 1}\n'
            '{"k": 5, "solver": "dgreedy", "seed": 2}\n'  # infeasible
        )
        code = main(
            [
                "solve-many",
                str(two_triangles_file),
                str(requests),
                "--mode",
                "serial",
                "--timeout-s",
                "30",
                "--max-retries",
                "1",
            ]
        )
        assert code == 2
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0].startswith("#0 dgreedy k=3:")
        record = json.loads(lines[1])
        assert record["index"] == 1
        assert record["error"] == "solver_error"
        assert record["retries"] == 0
        assert "Infeasible" in record["message"]

    def test_all_green_exit_zero(self, two_triangles_file, tmp_path, capsys):
        requests = tmp_path / "r.jsonl"
        requests.write_text('{"k": 3, "solver": "dgreedy", "seed": 1}\n')
        code = main(
            [
                "solve-many",
                str(two_triangles_file),
                str(requests),
                "--mode",
                "serial",
                "--timeout-s",
                "30",
            ]
        )
        assert code == 0
        assert "#0 dgreedy" in capsys.readouterr().out

    def test_flag_validation(self, two_triangles_file, tmp_path):
        requests = tmp_path / "r.jsonl"
        requests.write_text('{"k": 3, "solver": "dgreedy"}\n')
        with pytest.raises(SystemExit, match="timeout-s"):
            main(
                [
                    "solve-many",
                    str(two_triangles_file),
                    str(requests),
                    "--timeout-s",
                    "-1",
                ]
            )
        with pytest.raises(SystemExit, match="max-retries"):
            main(
                [
                    "solve-many",
                    str(two_triangles_file),
                    str(requests),
                    "--max-retries",
                    "-1",
                ]
            )
