"""End-to-end replication of the paper's worked examples (Figs. 1 and 3).

These tests tie the narrative of the paper to executable behaviour:
Figure 1's greedy trap, Example 1's start-node selection and expansion
bookkeeping, and Example 2's CBAS-ND outcome.
"""

import pytest

from repro.algorithms.cbas import CBAS
from repro.algorithms.cbas_nd import CBASND
from repro.algorithms.dgreedy import DGreedy
from repro.algorithms.exact import ExactBnB
from repro.algorithms.start_nodes import default_start_count, select_start_nodes
from repro.core.problem import WASOProblem
from repro.core.willingness import WillingnessEvaluator


class TestFigure1Story:
    """'The greedy algorithm ... is not able to find the optimal solution.'"""

    def test_greedy_sequence(self, fig1):
        """Greedy picks v1 (max interest), then v2, then v3."""
        evaluator = WillingnessEvaluator(fig1)
        # Step 1: v1 has the maximum interest score.
        interests = {node: fig1.interest(node) for node in fig1.nodes()}
        assert max(interests, key=interests.get) == 1
        # Step 2: v2 is v1's only neighbour.
        assert set(fig1.neighbors(1)) == {2}
        # Step 3: v3's increment (10) beats v4's (9).
        group = {1, 2}
        assert evaluator.add_delta(3, group) == pytest.approx(10.0)
        assert evaluator.add_delta(4, group) == pytest.approx(9.0)

    def test_greedy_total_and_optimum(self, fig1):
        problem = WASOProblem(graph=fig1, k=3)
        greedy = DGreedy().solve(problem)
        optimum = ExactBnB().solve(problem)
        assert greedy.willingness == pytest.approx(27.0)
        assert optimum.willingness == pytest.approx(30.0)
        assert optimum.members == frozenset({2, 3, 4})


class TestExample1Story:
    """CBAS's phase 1 on Figure 3: m = 2, start nodes v3 and v10."""

    def test_default_m_matches_paper(self, fig3):
        problem = WASOProblem(graph=fig3, k=5)
        assert default_start_count(problem) == 2  # ceil(10/5)

    def test_start_nodes_are_v3_and_v10(self, fig3):
        problem = WASOProblem(graph=fig3, k=5)
        evaluator = WillingnessEvaluator(fig3)
        starts = select_start_nodes(problem, evaluator, 2)
        assert set(starts) == {3, 10}

    def test_initial_frontier_of_v3(self, fig3):
        """VA = {v1, v2, v4, v5, v6} after VS = {v3}."""
        assert set(fig3.neighbors(3)) == {1, 2, 4, 5, 6}

    def test_frontier_after_adding_v6(self, fig3):
        """VA grows to {v1, v2, v4, v5, v7, v8, v10}."""
        frontier = (set(fig3.neighbors(3)) | set(fig3.neighbors(6))) - {3, 6}
        assert frontier == {1, 2, 4, 5, 7, 8, 10}

    def test_cbas_finds_good_solution(self, fig3):
        problem = WASOProblem(graph=fig3, k=5)
        result = CBAS(budget=20, m=2, stages=2).solve(problem, rng=7)
        # The paper's Example 1 run ends at 9.2 (not optimal); any CBAS run
        # must land between the worst and the optimal willingness.
        assert 5.0 <= result.willingness <= 9.7 + 1e-9


class TestExample2Story:
    """CBAS-ND reaches the optimum {v3, v4, v5, v6, v7} with W = 9.7."""

    def test_cbasnd_finds_the_optimum(self, fig3):
        problem = WASOProblem(graph=fig3, k=5)
        result = CBASND(
            budget=60, m=2, stages=3, rho=0.5, smoothing=0.6
        ).solve(problem, rng=3)
        assert result.members == frozenset({3, 4, 5, 6, 7})
        assert result.willingness == pytest.approx(9.7)

    def test_cbasnd_beats_or_ties_cbas_across_seeds(self, fig3):
        problem = WASOProblem(graph=fig3, k=5)
        wins, losses = 0, 0
        for seed in range(10):
            cbas = CBAS(budget=30, m=2, stages=3).solve(problem, rng=seed)
            nd = CBASND(
                budget=30, m=2, stages=3, rho=0.5, smoothing=0.6
            ).solve(problem, rng=seed)
            if nd.willingness > cbas.willingness:
                wins += 1
            elif nd.willingness < cbas.willingness:
                losses += 1
        assert wins >= losses
