"""Tests for graph persistence (edge list and JSON)."""

import pytest

from repro.exceptions import GraphError
from repro.graph.generators import facebook_like
from repro.graph.io import load_edge_list, load_json, save_edge_list, save_json


def _graphs_equal(first, second) -> bool:
    if set(first.nodes()) != set(second.nodes()):
        return False
    for node in first.nodes():
        if first.interest(node) != second.interest(node):
            return False
        if first.lam(node) != second.lam(node):
            return False
    if set(map(frozenset, first.edges())) != set(
        map(frozenset, second.edges())
    ):
        return False
    for u, v in first.edges():
        if first.tightness(u, v) != second.tightness(u, v):
            return False
        if first.tightness(v, u) != second.tightness(v, u):
            return False
    return True


class TestEdgeList:
    def test_roundtrip(self, tmp_path, triangle_graph):
        path = tmp_path / "graph.txt"
        save_edge_list(triangle_graph, path)
        loaded = load_edge_list(path, node_type=str)
        assert _graphs_equal(triangle_graph, loaded)

    def test_roundtrip_large(self, tmp_path):
        graph = facebook_like(120, seed=8)
        path = tmp_path / "fb.txt"
        save_edge_list(graph, path)
        loaded = load_edge_list(path)
        assert _graphs_equal(graph, loaded)

    def test_raw_crawl_format(self, tmp_path):
        # The MPI-SWS crawls are plain "u v" lines.
        path = tmp_path / "crawl.txt"
        path.write_text("0 1\n1 2\n2 0\n")
        graph = load_edge_list(path)
        assert graph.number_of_nodes() == 3
        assert graph.tightness(0, 1) == 1.0
        assert graph.interest(0) == 0.0

    def test_three_column_symmetric(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 0.5\n")
        graph = load_edge_list(path)
        assert graph.tightness(0, 1) == 0.5
        assert graph.tightness(1, 0) == 0.5

    def test_four_column_asymmetric(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1 0.5 0.25\n")
        graph = load_edge_list(path)
        assert graph.tightness(0, 1) == 0.5
        assert graph.tightness(1, 0) == 0.25

    def test_self_loops_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 0\n0 1\n")
        graph = load_edge_list(path)
        assert graph.number_of_edges() == 1

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("\n0 1\n\n")
        assert load_edge_list(path).number_of_edges() == 1

    def test_malformed_edge_line(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("justonenumber\n")
        with pytest.raises(GraphError):
            load_edge_list(path)

    def test_malformed_node_line(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("# node 3\n")
        with pytest.raises(GraphError):
            load_edge_list(path)

    def test_node_lambda_roundtrip(self, tmp_path, triangle_graph):
        triangle_graph.set_lam("a", 0.3)
        path = tmp_path / "g.txt"
        save_edge_list(triangle_graph, path)
        loaded = load_edge_list(path, node_type=str)
        assert loaded.lam("a") == 0.3
        assert loaded.lam("b") is None


class TestJson:
    def test_roundtrip(self, tmp_path, triangle_graph):
        triangle_graph.set_lam("b", 0.8)
        path = tmp_path / "graph.json"
        save_json(triangle_graph, path)
        loaded = load_json(path)
        assert _graphs_equal(triangle_graph, loaded)

    def test_roundtrip_asymmetric(self, tmp_path):
        graph = facebook_like(80, seed=2)
        path = tmp_path / "fb.json"
        save_json(graph, path)
        assert _graphs_equal(graph, load_json(path))

    def test_default_lambda_preserved(self, tmp_path):
        from repro.graph.social_graph import SocialGraph

        graph = SocialGraph(default_lambda=0.6)
        graph.add_node(1)
        path = tmp_path / "g.json"
        save_json(graph, path)
        loaded = load_json(path)
        assert loaded.default_lambda == 0.6
        assert loaded.lam(1) == 0.6
