"""Tests for the OCBA budget engine and stage planning."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.budget.ocba import (
    StartNodeStats,
    apportion,
    gaussian_overtake_probability,
    gaussian_weights,
    uniform_weights,
)
from repro.budget.stages import initial_budget, plan_stages


def _stats(node, values):
    stat = StartNodeStats(node=node)
    for value in values:
        stat.record(value)
    return stat


class TestStartNodeStats:
    def test_records_extremes(self):
        stat = _stats("a", [3.0, 1.0, 2.0])
        assert stat.c == 1.0
        assert stat.d == 3.0
        assert stat.n == 3

    def test_welford_mean_std(self):
        values = [1.0, 2.0, 3.0, 4.0]
        stat = _stats("a", values)
        assert stat.mean == pytest.approx(2.5)
        expected_std = math.sqrt(sum((v - 2.5) ** 2 for v in values) / 3)
        assert stat.std == pytest.approx(expected_std)

    def test_std_with_one_sample(self):
        assert _stats("a", [5.0]).std == 0.0


class TestUniformWeights:
    def test_best_gets_unit_weight(self):
        stats = [_stats("a", [1.0, 5.0]), _stats("b", [0.5, 3.0])]
        weights = uniform_weights(stats)
        assert weights[0] == 1.0
        assert 0.0 < weights[1] < 1.0

    def test_theorem3_ratio(self):
        """weights follow ((d_i - c_b)/(d_b - c_b))^{N_b} / 2."""
        best = _stats("b", [0.0, 10.0, 5.0])  # c=0, d=10, n=3
        other = _stats("i", [1.0, 6.0])  # d_i = 6
        weights = uniform_weights([best, other])
        expected = 0.5 * (6.0 / 10.0) ** 3
        assert weights[1] == pytest.approx(expected)

    def test_hopeless_node_pruned(self):
        best = _stats("b", [5.0, 10.0])
        hopeless = _stats("i", [1.0, 4.0])  # d_i < c_b
        weights = uniform_weights([best, hopeless])
        assert weights[1] == 0.0

    def test_pruned_nodes_get_zero(self):
        stat = _stats("a", [1.0])
        stat.pruned = True
        weights = uniform_weights([stat, _stats("b", [2.0])])
        assert weights[0] == 0.0

    def test_no_samples_yet(self):
        weights = uniform_weights([StartNodeStats(node="a")])
        assert weights == [1.0]

    def test_degenerate_incumbent(self):
        best = _stats("b", [5.0, 5.0])  # zero spread
        other = _stats("i", [5.0, 5.0])
        weights = uniform_weights([best, other])
        assert weights == [1.0, 1.0]


class TestTheorem3MonteCarlo:
    def test_bound_holds_empirically(self):
        """P(J*_i >= J*_b) <= 0.5 ((d_i-c_b)/(d_b-c_b))^{N_b} for uniforms."""
        rng = random.Random(42)
        c_b, d_b = 0.0, 1.0
        c_i, d_i = -0.5, 0.8
        n_b, n_i = 5, 7
        trials = 20000
        overtakes = 0
        for _ in range(trials):
            j_b = max(rng.uniform(c_b, d_b) for _ in range(n_b))
            j_i = max(rng.uniform(c_i, d_i) for _ in range(n_i))
            if j_i >= j_b:
                overtakes += 1
        bound = 0.5 * ((d_i - c_b) / (d_b - c_b)) ** n_b
        assert overtakes / trials <= bound * 1.15  # Monte-Carlo slack


class TestGaussian:
    def test_certain_overtake(self):
        prob = gaussian_overtake_probability(0.0, 1.0, 3, 100.0, 1.0, 3)
        assert prob > 0.99

    def test_certain_loss(self):
        prob = gaussian_overtake_probability(100.0, 1.0, 3, 0.0, 1.0, 3)
        assert prob < 0.01

    def test_symmetric_case_near_half(self):
        prob = gaussian_overtake_probability(0.0, 1.0, 4, 0.0, 1.0, 4)
        assert 0.35 < prob < 0.65

    def test_degenerate_sigmas(self):
        assert gaussian_overtake_probability(1.0, 0.0, 2, 2.0, 0.0, 2) == 1.0
        assert gaussian_overtake_probability(2.0, 0.0, 2, 1.0, 0.0, 2) == 0.0

    def test_monte_carlo_agreement(self):
        rng = random.Random(7)
        mu_b, sigma_b, n_b = 2.0, 1.0, 4
        mu_i, sigma_i, n_i = 1.5, 2.0, 3
        trials = 20000
        overtakes = 0
        for _ in range(trials):
            j_b = max(rng.gauss(mu_b, sigma_b) for _ in range(n_b))
            j_i = max(rng.gauss(mu_i, sigma_i) for _ in range(n_i))
            if j_i >= j_b:
                overtakes += 1
        numeric = gaussian_overtake_probability(
            mu_b, sigma_b, n_b, mu_i, sigma_i, n_i
        )
        assert overtakes / trials == pytest.approx(numeric, abs=0.02)

    def test_gaussian_weights_best_is_one(self):
        stats = [_stats("a", [1.0, 5.0, 3.0]), _stats("b", [0.5, 3.0, 2.0])]
        weights = gaussian_weights(stats)
        assert weights[0] == 1.0
        assert 0.0 <= weights[1] <= 1.0


class TestApportion:
    def test_exact_split(self):
        assert apportion([1.0, 1.0], 10) == [5, 5]

    def test_sums_to_total(self):
        shares = apportion([0.7, 0.2, 0.1], 17)
        assert sum(shares) == 17

    def test_zero_weights_even_split(self):
        shares = apportion([0.0, 0.0, 0.0], 7)
        assert sum(shares) == 7
        assert max(shares) - min(shares) <= 1

    def test_positive_weight_keeps_funding(self):
        shares = apportion([1000.0, 0.001, 0.001], 10)
        assert shares[1] >= 1 and shares[2] >= 1

    def test_empty(self):
        assert apportion([], 5) == []

    def test_negative_total_rejected(self):
        with pytest.raises(ValueError):
            apportion([1.0], -1)

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=1,
            max_size=10,
        ),
        st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=100, deadline=None)
    def test_property_sums_and_nonnegative(self, weights, total):
        shares = apportion(weights, total)
        assert sum(shares) == total
        assert all(share >= 0 for share in shares)
        assert len(shares) == len(weights)


class TestStages:
    def test_initial_budget_at_least_m(self):
        assert initial_budget(10) >= 10

    def test_initial_budget_single_start(self):
        assert initial_budget(1) == 1

    def test_initial_budget_validation(self):
        with pytest.raises(ValueError):
            initial_budget(0)
        with pytest.raises(ValueError):
            initial_budget(5, pb=1.0)
        with pytest.raises(ValueError):
            initial_budget(5, alpha=1.0)

    def test_paper_example_stage_count(self):
        """Example 1: T=20, n=10, k=5, Pb=0.7, alpha=0.9 -> r = 2."""
        r = plan_stages(20, n=10, k=5, m=2, pb=0.7, alpha=0.9)
        assert r == 2

    def test_stage_count_clamped(self):
        assert plan_stages(1000, n=100, k=10, m=10, max_stages=5) <= 5
        assert plan_stages(5, n=100, k=10, m=10) >= 1

    def test_stage_validation(self):
        with pytest.raises(ValueError):
            plan_stages(0, n=10, k=2, m=2)
        with pytest.raises(ValueError):
            plan_stages(10, n=1, k=2, m=2)
        with pytest.raises(ValueError):
            plan_stages(10, n=10, k=2, m=0)
