"""Differential and failure-mode suite for the on-disk frozen index.

The out-of-core format (:mod:`repro.graph.storage`) is only useful if a
mapped index is *indistinguishable* from the in-memory freeze it came
from, so the core of this suite is differential: every solve over a
saved/loaded/mmap-backed graph must be bit-identical to the same solve
over the original, on both the compiled and the vector engine.  Around
that sit the failure modes — version skew, checksum corruption,
truncation, crash-torn saves — each of which must surface as a *typed*
storage error (the serving daemon turns ``ReproError`` into a typed
``invalid`` reply; an ``AssertionError`` or ``struct.error`` would drop
the connection instead), plus the worker-side residency rules: mapped
graphs refuse to pickle, evictions unmap, and a killed worker recovers
its graph by path, not by pickle.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import pickle
import subprocess
import sys
import time

import pytest

from repro.algorithms.cbas_nd import CBASND
from repro.core.problem import WASOProblem
from repro.exceptions import (
    GraphStorageError,
    ReproError,
    StorageChecksumError,
    StorageVersionError,
)
from repro.graph.compiled import CompiledGraph
from repro.graph.generators import dblp_like
from repro.graph.io import (
    ingest_edge_list,
    load_cached_graph,
    resolve_graph_source,
)
from repro.graph.storage import MANIFEST_NAME, load_compiled, save_compiled
from repro.parallel import NEXT_RPC, FaultPlan
from repro.parallel.residency import ResidentGraphStore
from repro.runtime import ExecutionContext, SolveRequest


@pytest.fixture
def fresh_graph():
    """A private graph instance per test.

    ``save_compiled`` adopts the content token and ``disk_home`` onto
    the instance it writes, so these tests must never save the shared
    session fixtures — a session graph left pointing at a deleted
    tmp-dir index would poison every later path-install.
    """
    return dblp_like(150, seed=31)


@pytest.fixture
def saved_index(fresh_graph, index_cache):
    """``fresh_graph`` frozen and saved under the scratch cache."""
    return save_compiled(fresh_graph.compiled(), index_cache / "dblp")


def _solve(graph_like, engine: str, seed: int = 9):
    problem = WASOProblem(graph=graph_like, k=5)
    solver = CBASND(budget=60, m=5, stages=2, engine=engine)
    return solver.solve(problem, rng=seed)


def _assert_same(left, right) -> None:
    assert left.solution.members == right.solution.members
    assert left.willingness == right.willingness
    assert left.stats.samples_drawn == right.stats.samples_drawn
    assert left.stats.failed_samples == right.stats.failed_samples


# ----------------------------------------------------------------------
# Differential: disk round trip is invisible to the solvers
# ----------------------------------------------------------------------
class TestRoundTrip:
    @pytest.mark.parametrize("engine", ["compiled", "vector"])
    @pytest.mark.parametrize("mmap", [True, False])
    def test_solves_bit_identical_after_round_trip(
        self, fresh_graph, saved_index, engine, mmap
    ):
        baseline = _solve(fresh_graph, engine)
        loaded = load_compiled(saved_index, mmap=mmap)
        try:
            _assert_same(_solve(loaded.graph, engine), baseline)
        finally:
            loaded.close()

    def test_save_is_idempotent_and_token_content_derived(
        self, fresh_graph, index_cache
    ):
        first = save_compiled(fresh_graph.compiled(), index_cache / "a")
        token_a = json.loads(
            (first / MANIFEST_NAME).read_text()
        )["payload_token"]
        # The same arrays saved elsewhere mint the same identity: the
        # token names content, not a directory or a process.
        second = save_compiled(
            dblp_like(150, seed=31).compiled(), index_cache / "b"
        )
        token_b = json.loads(
            (second / MANIFEST_NAME).read_text()
        )["payload_token"]
        assert token_a == token_b
        assert token_a.startswith("cg-disk-")
        # A different graph mints a different token.
        other = save_compiled(
            dblp_like(150, seed=32).compiled(), index_cache / "c"
        )
        assert (
            json.loads((other / MANIFEST_NAME).read_text())["payload_token"]
            != token_a
        )

    def test_token_stable_across_processes(self, saved_index):
        """A worker that maps the index derives the token the parent
        planned installs with — asserted from a genuinely separate
        interpreter, not a fork."""
        script = (
            "from repro.graph.storage import load_compiled\n"
            f"print(load_compiled({str(saved_index)!r}).payload_token)\n"
        )
        child = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
        )
        manifest = json.loads((saved_index / MANIFEST_NAME).read_text())
        assert child.stdout.strip() == manifest["payload_token"]


# ----------------------------------------------------------------------
# Failure modes are typed storage errors
# ----------------------------------------------------------------------
class TestFailureModes:
    def test_version_skew_is_typed(self, saved_index):
        manifest = json.loads((saved_index / MANIFEST_NAME).read_text())
        manifest["version"] = 99
        (saved_index / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(StorageVersionError, match="waso compile"):
            load_compiled(saved_index)

    def test_checksum_corruption_is_typed(self, saved_index):
        target = saved_index / "potential.f64"
        data = bytearray(target.read_bytes())
        data[len(data) // 2] ^= 0xFF
        target.write_bytes(bytes(data))
        with pytest.raises(StorageChecksumError, match="potential"):
            load_compiled(saved_index)

    def test_truncation_fails_even_without_verify(self, saved_index):
        """``verify=False`` skips digests, never the size check — a
        short mmap would otherwise fault at some arbitrary solve later."""
        target = saved_index / "targets.i64"
        target.write_bytes(target.read_bytes()[:-16])
        with pytest.raises(StorageChecksumError):
            load_compiled(saved_index, verify=False)

    def test_torn_save_without_manifest_is_rejected(self, saved_index):
        (saved_index / MANIFEST_NAME).unlink()
        with pytest.raises(GraphStorageError, match="manifest"):
            load_compiled(saved_index)
        with pytest.raises(GraphStorageError):
            resolve_graph_source(str(saved_index))

    def test_storage_errors_are_repro_errors(self):
        # The serving daemon's admission catches ReproError to answer
        # with a typed "invalid" reply; the storage family must be in it.
        assert issubclass(GraphStorageError, ReproError)
        assert issubclass(StorageVersionError, GraphStorageError)
        assert issubclass(StorageChecksumError, GraphStorageError)


# ----------------------------------------------------------------------
# Residency rules for mapped graphs
# ----------------------------------------------------------------------
class TestResidency:
    def test_mmap_backed_graph_refuses_pickle(self, saved_index):
        loaded = load_compiled(saved_index)
        try:
            assert loaded.is_mmap_backed
            with pytest.raises(TypeError, match="disk_home"):
                pickle.dumps(loaded)
        finally:
            loaded.close()

    def test_in_memory_load_still_pickles(self, saved_index):
        loaded = load_compiled(saved_index, mmap=False)
        assert not loaded.is_mmap_backed
        clone = pickle.loads(pickle.dumps(loaded))
        assert clone.payload_token == loaded.payload_token

    def test_store_eviction_unmaps(self, saved_index):
        store = ResidentGraphStore()
        mapped = load_compiled(saved_index)
        store.install(mapped.payload_token, mapped)
        assert store.get(mapped.payload_token) is mapped
        replacement = dblp_like(60, seed=8).compiled()
        store.install(
            replacement.payload_token,
            replacement,
            evict=[mapped.payload_token],
        )
        # The eviction closed the mapping, not just dropped the ref.
        assert mapped.offsets == ()
        assert not mapped.is_mmap_backed
        with pytest.raises(RuntimeError, match="not resident"):
            store.get(mapped.payload_token)

    @pytest.mark.chaos
    def test_worker_crash_recovers_graph_by_path(self, saved_index):
        """A SIGKILLed worker's replacement re-installs the mapped graph
        from its path: results stay bit-identical to the fault-free run
        and no array pickle crosses the pipes during recovery."""
        before = set(multiprocessing.active_children())
        loaded = load_compiled(saved_index)
        problem = WASOProblem(graph=loaded.graph, k=5)
        requests = [
            SolveRequest(
                problem,
                "cbas-nd",
                seed,
                {"budget": 40, "m": 4, "stages": 2, "engine": "compiled"},
            )
            for seed in (11, 12, 13, 14)
        ]

        def run(plan):
            with ExecutionContext(workers=2, cpu_count=4) as context:
                if plan is not None:
                    context.solve_pool().fault_plan = plan
                return context.solve_many(
                    [
                        SolveRequest(r.problem, r.solver, r.rng,
                                     dict(r.solver_kwargs))
                        for r in requests
                    ],
                    mode="solve",
                )

        try:
            clean = run(None)
            faulted = run(FaultPlan(kills=[(0, NEXT_RPC)]))
        finally:
            loaded.close()
        for have, want in zip(faulted, clean):
            _assert_same(have, want)
        extra = faulted[0].stats.extra
        assert extra["worker_restarts"] >= 1
        assert extra["batch_payload_bytes"] < 5_000
        deadline = time.monotonic() + 5.0
        while set(multiprocessing.active_children()) - before:
            assert time.monotonic() < deadline, "orphan workers"
            time.sleep(0.02)


# ----------------------------------------------------------------------
# Ingestion front door
# ----------------------------------------------------------------------
class TestIngestion:
    EDGES = "\n".join(
        ["# toy crawl"]
        + [f"{node} {(node + 1) % 8} 0.{node + 1}" for node in range(8)]
        + ["0 4 0.5", "2 6 0.25"]
    )

    def test_ingest_is_content_addressed_and_cached(
        self, tmp_path, index_cache
    ):
        crawl = tmp_path / "crawl.txt"
        crawl.write_text(self.EDGES)
        first = ingest_edge_list(crawl, index_cache)
        stamp = (first / MANIFEST_NAME).stat().st_mtime_ns
        again = ingest_edge_list(crawl, index_cache)
        assert again == first
        assert (first / MANIFEST_NAME).stat().st_mtime_ns == stamp
        # Same bytes elsewhere: same cache slot (content, not filename).
        other = tmp_path / "copy.txt"
        other.write_text(self.EDGES)
        assert ingest_edge_list(other, index_cache) == first

    def test_cached_graph_solves_like_the_edge_list(
        self, tmp_path, index_cache
    ):
        from repro.graph.io import load_edge_list

        crawl = tmp_path / "crawl.txt"
        crawl.write_text(self.EDGES)
        index = ingest_edge_list(crawl, index_cache)
        direct = _solve(load_edge_list(crawl), "compiled")
        cached = _solve(load_cached_graph(index), "compiled")
        _assert_same(cached, direct)

    def test_request_from_spec_accepts_graph_path(
        self, fresh_graph, saved_index
    ):
        from repro.runtime import request_from_spec

        request = request_from_spec(
            fresh_graph,
            {"k": 5, "graph_path": str(saved_index), "budget": 40},
        )
        # The request solves over the named index, not the connection
        # default: its graph is the cached array-backed facade.
        assert (
            request.problem.graph.compiled().payload_token
            == json.loads(
                (saved_index / MANIFEST_NAME).read_text()
            )["payload_token"]
        )

    def test_daemon_serves_path_tenant_and_types_storage_errors(
        self, saved_index, index_cache
    ):
        """A tenant may be a path, and a request naming a bad index gets
        a typed ``invalid`` reply on a connection that stays up."""
        from repro.serving import ServingDaemon

        broken = index_cache / "broken"
        save_compiled(dblp_like(60, seed=8).compiled(), broken)
        manifest = json.loads((broken / MANIFEST_NAME).read_text())
        manifest["version"] = 99
        (broken / MANIFEST_NAME).write_text(json.dumps(manifest))

        async def scenario():
            daemon = ServingDaemon(
                {"disk": str(saved_index)}, workers=2, cpu_count=4
            )
            host, port = await daemon.start()
            try:
                reader, writer = await asyncio.open_connection(host, port)
                for spec in (
                    {
                        "id": "ok", "tenant": "disk", "k": 5,
                        "budget": 40, "m": 4, "stages": 2, "seed": 3,
                    },
                    {
                        "id": "bad", "tenant": "disk", "k": 5,
                        "graph_path": str(broken),
                    },
                    {
                        "id": "after", "tenant": "disk", "k": 5,
                        "budget": 40, "m": 4, "stages": 2, "seed": 4,
                    },
                ):
                    writer.write(json.dumps(spec).encode() + b"\n")
                await writer.drain()
                writer.write_eof()
                replies = {}
                while line := await reader.readline():
                    reply = json.loads(line)
                    replies[reply["id"]] = reply
                writer.close()
                await writer.wait_closed()
            finally:
                await daemon.shutdown()
            return replies

        replies = asyncio.run(scenario())
        assert replies["ok"]["ok"], replies["ok"]
        assert replies["after"]["ok"], replies["after"]
        assert not replies["bad"]["ok"]
        assert replies["bad"]["error"]["kind"] == "invalid"
        assert "version" in replies["bad"]["error"]["message"]
