"""The vector engine: differential oracle, determinism, and kernels.

Contract under test (see ``repro/vector/``):

* the reference engine stays the bit-exact oracle; the vector engine
  matches it **exactly** on integer quantities — stage counts, sample
  counts, failure counts, group size — and **to tolerance** on
  willingness (its kernels reassociate floating-point sums);
* every reported vector willingness equals the reference evaluator's
  recomputation over the returned members (the engine never invents a
  value, it only re-orders the same additions);
* within the engine, seeded runs are bit-reproducible — serial, and
  stage-sharded at any worker count (positional Philox randomness);
* the numpy-backed :class:`SelectionProbabilities` refit is
  IEEE-identical to the list backend.

The differential suite sweeps every scenario transformation (couples /
foes / themed / filters / separate-groups) through all three randomized
solvers.
"""

import math
import random

import numpy as np
import pytest

from repro.algorithms.cbas import CBAS
from repro.algorithms.cbas_nd import CBASND
from repro.algorithms.rgreedy import RGreedy
from repro.ce.probability import SelectionProbabilities
from repro.core.problem import WASOProblem
from repro.core.willingness import (
    ENGINES,
    WillingnessEvaluator,
    evaluator_for,
    validate_engine,
)
from repro.graph.generators import facebook_like
from repro.runtime.context import ExecutionContext
from repro.runtime.requests import SolveRequest
from repro.scenarios import (
    exhibition_problem,
    housewarming_problem,
    invitation_problem,
    mark_foes,
    merge_couple,
    reduce_wasodis,
    strip_virtual_node,
)
from repro.scenarios.filters import attribute_filter, filtered_problem
from repro.vector import VectorWillingnessEvaluator, vector_graph_for
from repro.vector.rng import draw_uniforms, philox_key, uniform_width

W_TOLERANCE = 1e-9


@pytest.fixture(scope="module")
def scenario_graph():
    return facebook_like(150, seed=31)


def _check_vector_result(problem, result, *, expect_batched=True):
    """Feasibility + the W-recompute tolerance oracle for one result."""
    members = result.solution.members
    assert len(members) == problem.k
    assert not (members & problem.forbidden)
    assert problem.required <= members
    recomputed = WillingnessEvaluator(problem.graph).value(members)
    assert result.solution.willingness == pytest.approx(
        recomputed, rel=W_TOLERANCE, abs=W_TOLERANCE
    )
    if expect_batched:
        assert (
            result.stats.extra.get("vector_batch_draws", 0)
            == result.stats.samples_drawn
        )
        assert "vector_fallback_draws" not in result.stats.extra


def _solve_differential(
    problem, solver_cls=CBASND, seed=3, exact_counts=True, **kwargs
):
    """Reference vs vector solve; exact integer gates + tolerance oracle.

    ``exact_counts=False`` relaxes the draw-count equality for instances
    whose seeds can be disconnected (bridge-check failures then depend
    on the engine's randomness); stage counts and feasibility always
    hold.
    """
    kwargs.setdefault("budget", 120)
    kwargs.setdefault("stages", 3)
    kwargs.setdefault("m", 6)
    if solver_cls is RGreedy:
        kwargs.pop("stages", None)
        kwargs.pop("m", None)
    reference = solver_cls(engine="reference", **kwargs).solve(
        problem, rng=seed
    )
    vector = solver_cls(engine="vector", **kwargs).solve(problem, rng=seed)
    assert vector.stats.stages == reference.stats.stages
    if exact_counts:
        assert vector.stats.samples_drawn == reference.stats.samples_drawn
        assert vector.stats.failed_samples == reference.stats.failed_samples
    _check_vector_result(problem, vector)
    return vector


# ----------------------------------------------------------------------
# Engine registration
# ----------------------------------------------------------------------
class TestEngineSeam:
    def test_vector_engine_registered(self):
        assert "vector" in ENGINES
        assert validate_engine("vector") == "vector"

    def test_unknown_engine_message_names_vector(self):
        with pytest.raises(ValueError, match="vector"):
            validate_engine("cuda")

    def test_evaluator_for_returns_vector_evaluator(self, scenario_graph):
        evaluator = evaluator_for(scenario_graph, "vector")
        assert isinstance(evaluator, VectorWillingnessEvaluator)
        assert evaluator.is_vector
        # Scalar entry points keep working (fallback paths rely on it).
        group = set(list(scenario_graph.nodes())[:4])
        assert evaluator.value(group) == pytest.approx(
            WillingnessEvaluator(scenario_graph).value(group)
        )

    def test_vector_graph_cached_by_payload_token(self, scenario_graph):
        compiled = scenario_graph.compiled()
        first = vector_graph_for(compiled)
        assert vector_graph_for(compiled) is first
        # detach() shares the arrays and the token: resident workers hit
        # the same cache entry instead of re-converting.
        assert vector_graph_for(compiled.detach()) is first
        assert first.number_of_nodes == compiled.number_of_nodes
        assert first.degrees.sum() == len(compiled.targets)


# ----------------------------------------------------------------------
# Positional randomness
# ----------------------------------------------------------------------
class TestPhiloxStreams:
    def test_width_padded_to_blocks(self):
        assert uniform_width(1) == 4
        assert uniform_width(4) == 4
        assert uniform_width(5) == 8
        assert uniform_width(10) == 12

    def test_key_packs_base_and_start(self):
        assert philox_key(1, 2) == (1 << 64) | 2
        assert philox_key(2**70, 2**70) == ((2**70 % 2**64) << 64) | (
            2**70 % 2**64
        )

    def test_subrange_rows_identical(self):
        whole = draw_uniforms(99, 7, 0, 20, 12)
        head = draw_uniforms(99, 7, 0, 5, 12)
        tail = draw_uniforms(99, 7, 5, 15, 12)
        assert np.array_equal(whole[:5], head)
        assert np.array_equal(whole[5:], tail)

    def test_streams_independent_by_start(self):
        assert not np.array_equal(
            draw_uniforms(99, 7, 0, 4, 8), draw_uniforms(99, 8, 0, 4, 8)
        )

    def test_width_must_align_to_blocks(self):
        with pytest.raises(ValueError):
            draw_uniforms(1, 1, 0, 1, 6)


# ----------------------------------------------------------------------
# Differential suite: scenario transformations × solvers
# ----------------------------------------------------------------------
class TestDifferentialScenarios:
    def test_couples(self, scenario_graph):
        u, v = next(iter(scenario_graph.edges()))
        problem = WASOProblem(graph=scenario_graph, k=6)
        merged_problem, merged_node = merge_couple(problem, u, v)
        _solve_differential(merged_problem, seed=5)

    def test_foes(self, scenario_graph):
        edges = list(scenario_graph.edges())[:3]
        hostile = mark_foes(scenario_graph, edges)
        problem = WASOProblem(graph=hostile, k=6)
        result = _solve_differential(problem, seed=7)
        for u, v in edges:
            assert not {u, v} <= result.solution.members

    def test_themed_exhibition_wasodis(self, scenario_graph):
        # λ = 1, connected=False: the frontier is the full allowed set.
        problem = exhibition_problem(scenario_graph, k=5)
        assert not problem.connected
        _solve_differential(problem, seed=17)

    def test_themed_housewarming(self, scenario_graph):
        problem = housewarming_problem(scenario_graph, k=5)
        _solve_differential(problem, seed=19)

    def test_invitation(self, scenario_graph):
        host = max(
            scenario_graph.nodes(), key=lambda n: scenario_graph.degree(n)
        )
        problem = invitation_problem(scenario_graph, host=host, k=4)
        # Seeds are {start, host}: possibly disconnected, so the final
        # bridge check can fail draws — failure counts are then
        # engine-random, only the structural gates hold.
        result = _solve_differential(problem, seed=23, m=4, exact_counts=False)
        assert host in result.solution.members

    def test_filters(self, scenario_graph):
        rng = random.Random(5)
        for node in scenario_graph.nodes():
            scenario_graph.set_metadata(
                node, city=rng.choice(["north", "south"])
            )
        organizer = next(iter(scenario_graph.nodes()))
        problem = filtered_problem(
            scenario_graph,
            k=5,
            predicate=attribute_filter(city="north"),
            required={organizer},
        )
        result = _solve_differential(problem, seed=29, exact_counts=False)
        assert organizer in result.solution.members
        for node in result.solution.members - {organizer}:
            assert scenario_graph.metadata(node)["city"] == "north"

    def test_separate_groups_reduction(self, scenario_graph):
        base = WASOProblem(graph=scenario_graph, k=4, connected=False)
        reduced = reduce_wasodis(base)
        result = _solve_differential(reduced, seed=37)
        group = strip_virtual_node(result.solution.members)
        assert len(group) == base.k

    def test_cbas_uniform(self, scenario_graph):
        problem = WASOProblem(graph=scenario_graph, k=6)
        _solve_differential(problem, solver_cls=CBAS, seed=41)

    def test_rgreedy(self, scenario_graph):
        problem = WASOProblem(graph=scenario_graph, k=6)
        _solve_differential(problem, solver_cls=RGreedy, seed=43, budget=60)


# ----------------------------------------------------------------------
# Within-engine determinism
# ----------------------------------------------------------------------
class TestVectorDeterminism:
    @pytest.fixture(scope="class")
    def problem(self):
        return WASOProblem(graph=facebook_like(220, seed=77), k=8)

    def _solve(self, problem, mode, workers=None, solver="cbas-nd"):
        with ExecutionContext(
            engine="vector", mode=mode, workers=workers
        ) as context:
            built = context.make_solver(
                solver, budget=240, stages=4, m=8
            )
            return built.solve(problem, rng=1234)

    @pytest.mark.parametrize("solver", ["cbas", "cbas-nd"])
    def test_serial_seeded_reproducible(self, problem, solver):
        first = self._solve(problem, "serial", solver=solver)
        second = self._solve(problem, "serial", solver=solver)
        assert first.solution.members == second.solution.members
        assert first.solution.willingness == second.solution.willingness
        assert first.stats.samples_drawn == second.stats.samples_drawn

    @pytest.mark.parametrize("solver", ["cbas", "cbas-nd"])
    def test_serial_matches_sharded_any_worker_count(self, problem, solver):
        serial = self._solve(problem, "serial", solver=solver)
        for workers in (2, 3):
            sharded = self._solve(
                problem, "stage", workers=workers, solver=solver
            )
            assert sharded.solution.members == serial.solution.members
            assert (
                sharded.solution.willingness == serial.solution.willingness
            )
            assert sharded.stats.samples_drawn == serial.stats.samples_drawn
            assert (
                sharded.stats.failed_samples == serial.stats.failed_samples
            )
            assert (
                sharded.stats.extra["vector_batch_draws"]
                == serial.stats.extra["vector_batch_draws"]
            )

    def test_solve_many_round_trip(self, problem):
        with ExecutionContext(engine="vector", mode="serial") as context:
            results = context.solve_many(
                [
                    SolveRequest(
                        problem=problem,
                        solver="cbas-nd",
                        rng=seed,
                        solver_kwargs={
                            "budget": 120,
                            "stages": 3,
                            "m": 6,
                            "engine": "vector",
                        },
                    )
                    for seed in (1, 2)
                ]
            )
        for result in results:
            _check_vector_result(problem, result)

    def test_scalar_fallback_counted(self, problem):
        sampler_eval = evaluator_for(problem.graph, "vector")
        from repro.algorithms.sampling import ExpansionSampler

        sampler = ExpansionSampler(problem, sampler_eval)
        rng = random.Random(9)
        seed = {next(iter(problem.candidates()))}
        assert sampler.vector_fallback_draws == 0
        sampler.draw(seed, rng)
        assert sampler.vector_fallback_draws == 1
        sampler.draw_batch(seed, rng, 3)
        assert sampler.vector_fallback_draws == 4

    def test_non_vector_stats_carry_no_vector_keys(self, problem):
        result = CBASND(
            engine="compiled", budget=60, stages=2, m=4
        ).solve(problem, rng=5)
        assert "vector_batch_draws" not in result.stats.extra
        assert "vector_fallback_draws" not in result.stats.extra


# ----------------------------------------------------------------------
# Numpy-backed SelectionProbabilities
# ----------------------------------------------------------------------
class TestNumpyProbabilityBackend:
    def _pair(self, n=40, k=5):
        compiled = facebook_like(n, seed=13).compiled()
        nodes = list(compiled.nodes)
        plain = SelectionProbabilities(
            nodes, k, index_of=compiled.index_of, size=compiled.number_of_nodes
        )
        vectorized = SelectionProbabilities(
            nodes,
            k,
            index_of=compiled.index_of,
            size=compiled.number_of_nodes,
            backend="numpy",
        )
        return plain, vectorized

    def test_backend_validated(self):
        with pytest.raises(ValueError, match="backend"):
            SelectionProbabilities(["a"], 1, backend="torch")

    def test_refit_rounds_bit_identical(self):
        plain, vectorized = self._pair()
        rng = random.Random(3)
        for _ in range(6):
            counts = {slot: rng.randrange(1, 4) for slot in rng.sample(range(30), 8)}
            plain.update_from_counts(counts, 10, smoothing=0.7)
            vectorized.update_from_counts(counts, 10, smoothing=0.7)
        assert vectorized.snapshot() == plain.snapshot()

    def test_patches_bit_identical_and_plain_floats(self):
        plain, vectorized = self._pair()
        patch_a, _ = plain.update_from_counts({3: 2, 7: 1}, 4, smoothing=0.6)
        patch_b, _ = vectorized.update_from_counts(
            {3: 2, 7: 1}, 4, smoothing=0.6
        )
        assert patch_a == patch_b
        assert all(type(value) is float for _, value in patch_b[2])

    def test_movement_path_matches(self):
        plain, vectorized = self._pair()
        _, movement_a = plain.update_from_counts(
            {1: 3, 9: 1}, 5, smoothing=0.5, compute_movement=True
        )
        _, movement_b = vectorized.update_from_counts(
            {1: 3, 9: 1}, 5, smoothing=0.5, compute_movement=True
        )
        assert movement_b == pytest.approx(movement_a, rel=1e-12)
        assert vectorized.snapshot() == plain.snapshot()

    def test_replicate_and_restore(self):
        _, vectorized = self._pair()
        vectorized.update_from_counts({2: 1}, 2, smoothing=0.4)
        clone = vectorized.replicate()
        assert clone.snapshot() == vectorized.snapshot()
        clone.update_from_counts({4: 2}, 2, smoothing=0.4)
        assert clone.snapshot() != vectorized.snapshot()
        saved = vectorized.snapshot()
        vectorized.update_from_counts({5: 1}, 1, smoothing=0.9)
        vectorized.restore(saved)
        assert vectorized.snapshot() == saved

    def test_elite_bincount_matches_dict_counts(self):
        problem = WASOProblem(graph=facebook_like(60, seed=21), k=4)
        for engine, backend in (("compiled", "list"), ("vector", "numpy")):
            evaluator = evaluator_for(problem.graph, engine)
            from repro.algorithms.sampling import ExpansionSampler

            sampler = ExpansionSampler(problem, evaluator)
            rng = random.Random(8)
            start = next(iter(problem.candidates()))
            samples = [
                s
                for s in sampler.draw_batch({start}, rng, 12)
                if s is not None
            ]
            compiled = problem.graph.compiled()
            vector = SelectionProbabilities(
                problem.candidates(),
                problem.k,
                index_of=compiled.index_of,
                size=compiled.number_of_nodes,
                backend=backend,
            )
            vector.update(samples, rho=0.5, smoothing=0.5)
            if backend == "numpy":
                numpy_probs = vector.snapshot()
            else:
                list_probs = vector.snapshot()
        # Same samples (seeded draws are engine-identical on the scalar
        # path), same Eq. (4) arithmetic, different counting machinery.
        assert numpy_probs == list_probs

    def test_gamma_monotone_and_as_dict(self):
        _, vectorized = self._pair()
        assert vectorized.gamma == -math.inf
        vectorized.observe_stage_gamma(4.0)
        vectorized.observe_stage_gamma(2.0)
        assert vectorized.gamma == 4.0
        probabilities = vectorized.as_dict()
        assert all(0.0 <= p <= 1.0 for p in probabilities.values())
