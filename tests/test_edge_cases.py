"""Edge cases and failure injection across the stack.

Degenerate sizes (k = 1, k = n, single-node graphs), hostile scores
(all-zero, all-negative), starved budgets, and misuse patterns — the
inputs a deployed service would eventually receive.
"""

import pytest

from repro.algorithms.cbas import CBAS
from repro.algorithms.cbas_nd import CBASND
from repro.algorithms.dgreedy import DGreedy
from repro.algorithms.exact import ExactBnB
from repro.algorithms.ip import IPSolver
from repro.algorithms.rgreedy import RGreedy
from repro.core.problem import WASOProblem
from repro.core.willingness import willingness
from repro.exceptions import ProblemSpecificationError
from repro.graph.generators import ring_graph
from repro.graph.social_graph import SocialGraph

ALL_SOLVERS = [
    DGreedy(),
    RGreedy(budget=10, m=2),
    CBAS(budget=12, m=2, stages=2),
    CBASND(budget=12, m=2, stages=2),
    ExactBnB(),
    IPSolver(),
]


def _single_node_graph():
    graph = SocialGraph()
    graph.add_node("only", interest=3.0)
    return graph


def _all_zero_graph():
    graph = SocialGraph()
    for node in range(5):
        graph.add_node(node, interest=0.0)
    for node in range(4):
        graph.add_edge(node, node + 1, 0.0)
    return graph


def _negative_graph():
    """Foes everywhere: every willingness value is negative."""
    graph = SocialGraph()
    for node in range(5):
        graph.add_node(node, interest=-1.0)
    for node in range(4):
        graph.add_edge(node, node + 1, -2.0)
    return graph


class TestDegenerateSizes:
    @pytest.mark.parametrize("solver", ALL_SOLVERS, ids=lambda s: s.name)
    def test_k_equals_one(self, solver, fig1):
        result = solver.solve(WASOProblem(graph=fig1, k=1), rng=0)
        assert len(result.members) == 1

    @pytest.mark.parametrize("solver", ALL_SOLVERS, ids=lambda s: s.name)
    def test_k_equals_n(self, solver, fig1):
        result = solver.solve(WASOProblem(graph=fig1, k=4), rng=0)
        assert result.members == frozenset({1, 2, 3, 4})
        assert result.willingness == pytest.approx(
            willingness(fig1, {1, 2, 3, 4})
        )

    @pytest.mark.parametrize("solver", ALL_SOLVERS, ids=lambda s: s.name)
    def test_single_node_graph(self, solver):
        graph = _single_node_graph()
        result = solver.solve(WASOProblem(graph=graph, k=1), rng=0)
        assert result.members == frozenset({"only"})
        assert result.willingness == pytest.approx(3.0)

    def test_empty_graph_rejected(self):
        with pytest.raises(ProblemSpecificationError):
            WASOProblem(graph=SocialGraph(), k=1)


class TestHostileScores:
    @pytest.mark.parametrize("solver", ALL_SOLVERS, ids=lambda s: s.name)
    def test_all_zero_scores(self, solver):
        graph = _all_zero_graph()
        result = solver.solve(WASOProblem(graph=graph, k=3), rng=0)
        assert len(result.members) == 3
        assert result.willingness == pytest.approx(0.0)
        assert graph.is_connected_subset(result.members)

    @pytest.mark.parametrize("solver", ALL_SOLVERS, ids=lambda s: s.name)
    def test_all_negative_scores(self, solver):
        """Maximizing a negative objective must still work (least-bad)."""
        graph = _negative_graph()
        result = solver.solve(WASOProblem(graph=graph, k=2), rng=0)
        assert len(result.members) == 2
        assert result.willingness < 0

    def test_negative_optimum_is_exact(self):
        graph = _negative_graph()
        problem = WASOProblem(graph=graph, k=2)
        exact = ExactBnB().solve(problem)
        milp = IPSolver().solve(problem)
        assert milp.willingness == pytest.approx(exact.willingness)


class TestStarvedBudgets:
    def test_cbas_budget_below_stages(self, fig3):
        problem = WASOProblem(graph=fig3, k=3)
        result = CBAS(budget=2, m=2, stages=5).solve(problem, rng=0)
        assert len(result.members) == 3

    def test_cbasnd_budget_one(self, fig3):
        problem = WASOProblem(graph=fig3, k=3)
        result = CBASND(budget=1, m=1, stages=1).solve(problem, rng=0)
        assert len(result.members) == 3

    def test_rgreedy_budget_one(self, fig3):
        problem = WASOProblem(graph=fig3, k=3)
        result = RGreedy(budget=1, m=1).solve(problem, rng=0)
        assert len(result.members) == 3

    def test_single_start_node(self, fig3):
        problem = WASOProblem(graph=fig3, k=3)
        result = CBASND(budget=20, m=1, stages=2).solve(problem, rng=0)
        assert len(result.members) == 3


class TestStructuralTraps:
    def test_ring_graph_all_solvers(self):
        """A cycle: every k-group is a path segment; connectivity binds."""
        graph = ring_graph(12, seed=3)
        problem = WASOProblem(graph=graph, k=4)
        for solver in ALL_SOLVERS:
            result = solver.solve(problem, rng=1)
            assert graph.is_connected_subset(result.members)

    def test_star_graph_hub_required_for_big_k(self):
        """On a star, any group with k >= 3 must include the hub."""
        graph = SocialGraph()
        graph.add_node("hub", interest=0.0)
        for leaf in range(6):
            graph.add_node(leaf, interest=1.0)
            graph.add_edge("hub", leaf, 0.5)
        problem = WASOProblem(graph=graph, k=4)
        for solver in ALL_SOLVERS:
            result = solver.solve(problem, rng=1)
            assert "hub" in result.members

    def test_bridge_heavy_graph(self):
        """Two cliques joined by one bridge; groups spanning both must
        include both bridge endpoints."""
        graph = SocialGraph()
        for node in range(8):
            graph.add_node(node, interest=0.5)
        for clique in (range(0, 4), range(4, 8)):
            members = list(clique)
            for i, u in enumerate(members):
                for v in members[i + 1:]:
                    graph.add_edge(u, v, 1.0)
        graph.add_edge(3, 4, 0.1)
        problem = WASOProblem(graph=graph, k=6)
        result = ExactBnB().solve(problem)
        if result.members & {0, 1, 2, 3} and result.members & {4, 5, 6, 7}:
            assert {3, 4} <= result.members


class TestMisuse:
    def test_solver_rejects_infeasible_before_work(self, path_graph):
        problem = WASOProblem(
            graph=path_graph, k=4, forbidden=frozenset({2})
        )
        from repro.exceptions import InfeasibleProblemError

        for solver in ALL_SOLVERS:
            with pytest.raises(InfeasibleProblemError):
                solver.solve(problem, rng=0)

    def test_rng_accepts_int_none_and_random(self, fig3):
        import random

        problem = WASOProblem(graph=fig3, k=3)
        solver = CBASND(budget=10, m=2, stages=2)
        solver.solve(problem, rng=5)
        solver.solve(problem, rng=None)
        solver.solve(problem, rng=random.Random(5))
