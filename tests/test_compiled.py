"""Differential tests: compiled flat-array path vs dict-based reference.

The compiled index (:mod:`repro.graph.compiled`) and the fast evaluator /
sampler paths promise *bit-identical* results to the reference
implementation — same neighbour order, same floating-point expressions,
same RNG consumption.  These tests hold that line on random graphs with
asymmetric tightness and λ-weighted nodes, and on full seeded solver runs.
"""

import pickle
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.cbas import CBAS
from repro.algorithms.cbas_nd import CBASND
from repro.algorithms.rgreedy import RGreedy
from repro.algorithms.sampling import ExpansionSampler, seed_for_start
from repro.algorithms.start_nodes import select_start_nodes
from repro.core.problem import WASOProblem
from repro.core.willingness import (
    FastWillingnessEvaluator,
    WillingnessEvaluator,
    evaluator_for,
)
from repro.exceptions import EdgeNotFoundError, NodeNotFoundError
from repro.graph.compiled import CompiledGraph
from repro.graph.generators import facebook_like, random_social_graph
from repro.graph.social_graph import SocialGraph


def _general_graph(n: int, seed: int) -> SocialGraph:
    """Random graph with asymmetric tightness and mixed λ weights."""
    graph = random_social_graph(n, average_degree=3.5, seed=seed)
    rng = random.Random(seed + 1)
    for u, v in graph.edges():
        graph.set_tightness(u, v, rng.uniform(-1.0, 1.0))
        graph.set_tightness(v, u, rng.uniform(-1.0, 1.0))
    for node in graph.nodes():
        graph.set_lam(node, rng.choice([None, rng.random()]))
    return graph


class TestCompiledGraphStructure:
    def test_csr_mirrors_adjacency(self, triangle_graph):
        comp = CompiledGraph.from_graph(triangle_graph)
        assert comp.number_of_nodes == 3
        assert comp.number_of_directed_slots == 6
        for node in triangle_graph.nodes():
            index = comp.index(node)
            row = [
                comp.nodes[comp.targets[slot]]
                for slot in comp.neighbor_slots(index)
            ]
            assert row == list(triangle_graph.neighbors(node))
            assert comp.degree(index) == triangle_graph.degree(node)

    def test_pair_weights_match_graph(self, triangle_graph):
        comp = CompiledGraph.from_graph(triangle_graph)
        for u, v in triangle_graph.edges():
            iu = comp.index(u)
            for slot in comp.neighbor_slots(iu):
                if comp.targets[slot] == comp.index(v):
                    assert comp.pair_w[slot] == triangle_graph.pair_weight(u, v)

    def test_cache_reused_and_invalidated(self, triangle_graph):
        first = triangle_graph.compiled()
        assert triangle_graph.compiled() is first
        triangle_graph.set_interest("a", 9.0)
        rebuilt = triangle_graph.compiled()
        assert rebuilt is not first
        index = rebuilt.index("a")
        assert rebuilt.weighted_interest[index] == 9.0

    def test_problem_accessor_shares_graph_cache(self, triangle_graph):
        problem = WASOProblem(graph=triangle_graph, k=2)
        assert problem.compiled() is triangle_graph.compiled()

    def test_pickle_roundtrip(self):
        graph = _general_graph(30, seed=5)
        comp = graph.compiled()
        comp.component_size_by_index()
        clone = pickle.loads(pickle.dumps(comp))
        assert clone.nodes == comp.nodes
        assert clone.targets == comp.targets
        assert clone.pair_w == comp.pair_w
        assert clone.potential == comp.potential
        assert clone.row_edges == comp.row_edges
        assert clone.component_size_by_index() == (
            comp.component_size_by_index()
        )

    def test_pickled_problem_ships_frozen_index(self):
        graph = facebook_like(60, seed=3)
        problem = WASOProblem(graph=graph, k=4)
        problem.compiled()
        clone = pickle.loads(pickle.dumps(problem))
        # The unpickled graph must serve the shipped arrays without a
        # rebuild: same mutation count, cache present.
        assert clone.graph._compiled_cache is not None
        comp = clone.compiled()
        assert comp.potential == problem.compiled().potential

    def test_pickle_ships_irreducible_arrays_only(self):
        """pair_w / potential / index_of are rebuilt, not shipped."""
        graph = _general_graph(30, seed=5)
        comp = graph.compiled()
        state = comp.__getstate__()
        for derived in ("index_of", "pair_w", "potential", "row_edges"):
            assert derived not in state
        clone = pickle.loads(pickle.dumps(comp))
        # The rebuild is bit-identical (same expressions, same order).
        assert clone.pair_w == comp.pair_w
        assert clone.potential == comp.potential
        assert clone.index_of == comp.index_of

    def test_detached_problem_is_dict_free_and_equivalent(self):
        from repro.graph.compiled import ArrayBackedGraph

        graph = facebook_like(100, seed=9)
        banned = frozenset(list(graph.nodes())[:8])
        problem = WASOProblem(graph=graph, k=5, forbidden=banned)
        slim = pickle.loads(pickle.dumps(problem.detached()))
        assert isinstance(slim.graph, ArrayBackedGraph)
        # No adjacency dicts anywhere in the payload graph.
        with pytest.raises(AttributeError):
            slim.graph._adj
        with pytest.raises(AttributeError):
            slim.graph.interest
        # Topology facade mirrors the source graph.
        assert slim.graph.node_list() == graph.node_list()
        node = graph.node_list()[10]
        assert list(slim.graph.neighbors(node)) == list(graph.neighbors(node))
        assert slim.graph.degree(node) == graph.degree(node)
        with pytest.raises(NodeNotFoundError):
            slim.graph.neighbors("zzz")
        # Seeded compiled-engine solves are bit-identical to the original.
        full_run = CBASND(budget=100, m=6, stages=3).solve(problem, rng=8)
        slim_run = CBASND(budget=100, m=6, stages=3).solve(slim, rng=8)
        assert full_run.members == slim_run.members
        assert full_run.willingness == slim_run.willingness
        assert full_run.stats.samples_drawn == slim_run.stats.samples_drawn

    def test_component_sizes(self, two_components_graph):
        comp = two_components_graph.compiled()
        sizes = comp.component_size_by_index()
        assert sorted(sizes) == [3, 3, 3, 3, 3, 3]
        problem = WASOProblem(graph=two_components_graph, k=3)
        assert problem.allowed_component_sizes() == {
            node: 3 for node in two_components_graph.nodes()
        }


class TestEvaluatorEquivalence:
    @given(
        st.integers(min_value=2, max_value=25),
        st.integers(min_value=0, max_value=2000),
    )
    @settings(max_examples=60, deadline=None)
    def test_bit_identical_on_random_graphs(self, n, seed):
        graph = _general_graph(n, seed)
        reference = WillingnessEvaluator(graph)
        fast = FastWillingnessEvaluator(graph.compiled())
        nodes = graph.node_list()
        rng = random.Random(seed + 2)
        group = set(rng.sample(nodes, rng.randint(1, n)))
        outside = [node for node in nodes if node not in group]

        assert fast.value(group) == reference.value(group)
        for node in nodes:
            assert fast.node_potential(node) == reference.node_potential(node)
            assert fast.weighted_interest(node) == (
                reference.weighted_interest(node)
            )
        if outside:
            node = rng.choice(outside)
            assert fast.add_delta(node, group) == (
                reference.add_delta(node, group)
            )
        member = rng.choice(sorted(group, key=repr))
        assert fast.remove_delta(member, group) == (
            reference.remove_delta(member, group)
        )
        for u, v in graph.edges():
            assert fast.pair_weight(u, v) == reference.pair_weight(u, v)

    def test_error_parity(self, triangle_graph):
        reference = WillingnessEvaluator(triangle_graph)
        fast = FastWillingnessEvaluator(triangle_graph.compiled())
        for evaluator in (reference, fast):
            with pytest.raises(NodeNotFoundError):
                evaluator.value({"a", "zzz"})
            with pytest.raises(NodeNotFoundError):
                evaluator.add_delta("zzz", set())
            with pytest.raises(NodeNotFoundError):
                evaluator.node_potential("zzz")
            with pytest.raises(NodeNotFoundError):
                evaluator.pair_weight("a", "zzz")
        graph = SocialGraph()
        graph.add_node(1)
        graph.add_node(2)
        for evaluator in (
            WillingnessEvaluator(graph),
            FastWillingnessEvaluator(graph.compiled()),
        ):
            with pytest.raises(EdgeNotFoundError):
                evaluator.pair_weight(1, 2)

    def test_evaluator_for_dispatch(self, triangle_graph):
        assert isinstance(
            evaluator_for(triangle_graph, "compiled"),
            FastWillingnessEvaluator,
        )
        assert isinstance(
            evaluator_for(triangle_graph, "reference"), WillingnessEvaluator
        )
        with pytest.raises(ValueError):
            evaluator_for(triangle_graph, "magic")


class TestSamplerEquivalence:
    def _paired_samplers(self, problem):
        return (
            ExpansionSampler(problem, WillingnessEvaluator(problem.graph)),
            ExpansionSampler(
                problem, FastWillingnessEvaluator(problem.graph.compiled())
            ),
        )

    @pytest.mark.parametrize("connected", [True, False])
    def test_seeded_draws_identical(self, connected):
        graph = _general_graph(40, seed=11)
        problem = WASOProblem(graph=graph, k=5, connected=connected)
        reference, fast = self._paired_samplers(problem)
        rng_a, rng_b = random.Random(77), random.Random(77)
        starts = [node for node in graph.nodes()][:10]
        for start in starts:
            seed = seed_for_start(problem, start)
            for _ in range(10):
                a = reference.draw(seed, rng_a)
                b = fast.draw(seed, rng_b)
                if a is None:
                    assert b is None
                else:
                    assert a.members == b.members
                    assert a.willingness == b.willingness

    def test_biased_draws_identical(self):
        graph = facebook_like(120, seed=21)
        problem = WASOProblem(graph=graph, k=6)
        reference, fast = self._paired_samplers(problem)
        rng_a, rng_b = random.Random(5), random.Random(5)
        start = max(graph.nodes(), key=lambda n: graph.degree(n))
        seed = {start}
        weight_rng = random.Random(9)
        weights = {node: weight_rng.random() for node in graph.nodes()}
        for _ in range(15):
            a = reference.draw(seed, rng_a, weight_of=weights.get)
            b = fast.draw(seed, rng_b, weight_of=weights.get)
            assert a.members == b.members and a.willingness == b.willingness
        for _ in range(15):
            a = reference.draw(seed, rng_a, greedy_bias=True)
            b = fast.draw(seed, rng_b, greedy_bias=True)
            assert a.members == b.members and a.willingness == b.willingness

    def test_weight_array_matches_weight_of(self):
        """Array-indexed frontier weights draw the exact same samples."""
        graph = facebook_like(120, seed=21)
        problem = WASOProblem(graph=graph, k=6)
        reference, fast = self._paired_samplers(problem)
        compiled = graph.compiled()
        weight_rng = random.Random(9)
        weights = {node: weight_rng.random() for node in graph.nodes()}
        array = [0.0] * compiled.number_of_nodes
        for node, weight in weights.items():
            array[compiled.index_of[node]] = weight
        start = max(graph.nodes(), key=lambda n: graph.degree(n))
        seed = {start}
        rng_a, rng_b = random.Random(5), random.Random(5)
        for _ in range(15):
            a = reference.draw(seed, rng_a, weight_of=weights.get)
            b = fast.draw(seed, rng_b, weight_array=array)
            assert a.members == b.members and a.willingness == b.willingness
            assert b.indices is not None and len(b.indices) == 6

    def test_weight_array_rejected_on_reference_path(self):
        graph = facebook_like(40, seed=2)
        problem = WASOProblem(graph=graph, k=4)
        reference, fast = self._paired_samplers(problem)
        start = next(iter(graph.nodes()))
        with pytest.raises(ValueError):
            reference.draw({start}, random.Random(1), weight_array=[1.0])
        with pytest.raises(ValueError):
            fast.draw(
                {start},
                random.Random(1),
                weight_array=[1.0],
                greedy_bias=True,
            )

    def test_draw_batch_matches_single_draws(self):
        graph = _general_graph(50, seed=3)
        problem = WASOProblem(graph=graph, k=5)
        _, fast = self._paired_samplers(problem)
        _, fast_batch = self._paired_samplers(problem)
        start = next(iter(graph.nodes()))
        seed = seed_for_start(problem, start)
        rng_a, rng_b = random.Random(4), random.Random(4)
        singles = [fast.draw(seed, rng_a) for _ in range(12)]
        batch = fast_batch.draw_batch(seed, rng_b, 12)
        assert len(batch) == len(singles)
        for a, b in zip(singles, batch):
            if a is None:
                assert b is None
            else:
                assert a.members == b.members
                assert a.willingness == b.willingness

    def test_forbidden_respected_on_fast_path(self):
        graph = facebook_like(80, seed=4)
        banned = frozenset(list(graph.nodes())[:30])
        start = next(n for n in graph.nodes() if n not in banned)
        problem = WASOProblem(graph=graph, k=4, forbidden=banned)
        fast = ExpansionSampler(
            problem, FastWillingnessEvaluator(graph.compiled())
        )
        rng = random.Random(2)
        for _ in range(25):
            sample = fast.draw({start}, rng)
            if sample is not None:
                assert not (sample.members & banned)

    def test_disconnected_seed_bridge_check(self, two_components_graph):
        # Seed spans both triangles: no k=6 group can bridge them... but
        # WASO-dis accepts it; connected WASO must keep failing.
        problem = WASOProblem.__new__(WASOProblem)
        object.__setattr__(problem, "graph", two_components_graph)
        object.__setattr__(problem, "k", 6)
        object.__setattr__(problem, "connected", True)
        object.__setattr__(problem, "required", frozenset({0, 3}))
        object.__setattr__(problem, "forbidden", frozenset())
        fast = ExpansionSampler(
            problem,
            FastWillingnessEvaluator(two_components_graph.compiled()),
        )
        reference = ExpansionSampler(
            problem, WillingnessEvaluator(two_components_graph)
        )
        rng_a, rng_b = random.Random(1), random.Random(1)
        for _ in range(5):
            assert reference.draw({0, 3}, rng_a) is None
            assert fast.draw({0, 3}, rng_b) is None

    def test_start_ranking_identical(self):
        graph = _general_graph(60, seed=31)
        problem = WASOProblem(graph=graph, k=4)
        reference = select_start_nodes(
            problem, WillingnessEvaluator(graph), 12
        )
        fast = select_start_nodes(
            problem, FastWillingnessEvaluator(graph.compiled()), 12
        )
        assert reference == fast


class TestSolverEquivalence:
    @pytest.mark.parametrize(
        "make",
        [
            lambda engine: CBAS(budget=120, m=8, stages=4, engine=engine),
            lambda engine: CBAS(
                budget=120, m=8, stages=4, allocation="gaussian", engine=engine
            ),
            lambda engine: CBASND(budget=120, m=8, stages=4, engine=engine),
            lambda engine: CBASND(
                budget=120,
                m=8,
                stages=4,
                backtrack_threshold=0.05,
                engine=engine,
            ),
            lambda engine: RGreedy(budget=40, m=6, engine=engine),
        ],
        ids=["cbas", "cbas-gaussian", "cbas-nd", "cbas-nd-backtrack", "rgreedy"],
    )
    @pytest.mark.parametrize("seed", [1, 7, 42])
    def test_seeded_solutions_bit_identical(self, small_facebook, make, seed):
        problem = WASOProblem(graph=small_facebook, k=6)
        reference = make("reference").solve(problem, rng=seed)
        fast = make("compiled").solve(problem, rng=seed)
        assert reference.members == fast.members
        assert reference.willingness == fast.willingness
        assert (
            reference.stats.samples_drawn == fast.stats.samples_drawn
        )
        assert (
            reference.stats.failed_samples == fast.stats.failed_samples
        )

    def test_lambda_weighted_runs_identical(self):
        graph = _general_graph(80, seed=13)
        problem = WASOProblem(graph=graph, k=4, connected=False)
        reference = CBASND(
            budget=100, m=6, stages=3, engine="reference"
        ).solve(problem, rng=3)
        fast = CBASND(budget=100, m=6, stages=3, engine="compiled").solve(
            problem, rng=3
        )
        assert reference.members == fast.members
        assert reference.willingness == fast.willingness

    def test_component_skip_reported(self, two_components_graph):
        # k=3 fits both triangles; shrink one by forbidding a node so its
        # two survivors cannot host a group.
        problem = WASOProblem(
            graph=two_components_graph, k=3, forbidden=frozenset({2})
        )
        result = CBAS(budget=60, m=6, stages=2).solve(problem, rng=1)
        assert result.stats.extra.get("skipped_small_components", 0) >= 1
        assert result.solution.is_feasible(problem)
        # The pruned starts' stage-0 share is redirected to viable starts,
        # not discarded: the full budget is still spent.
        assert result.stats.samples_drawn >= 55

    def test_invalid_engine_rejected(self):
        with pytest.raises(ValueError):
            CBAS(engine="nope")
        with pytest.raises(ValueError):
            RGreedy(engine="nope")
