"""Tests for the deterministic greedy baseline."""

import pytest

from repro.algorithms.dgreedy import DGreedy
from repro.core.problem import WASOProblem
from repro.exceptions import SolverError


class TestFigure1Narrative:
    """DGreedy must walk straight into the paper's Fig. 1 trap."""

    def test_greedy_gets_trapped_at_27(self, fig1):
        problem = WASOProblem(graph=fig1, k=3)
        result = DGreedy().solve(problem)
        assert result.members == frozenset({1, 2, 3})
        assert result.willingness == pytest.approx(27.0)

    def test_greedy_misses_the_optimum(self, fig1):
        problem = WASOProblem(graph=fig1, k=3)
        result = DGreedy().solve(problem)
        from repro.core.willingness import willingness

        optimum = willingness(fig1, {2, 3, 4})
        assert optimum == pytest.approx(30.0)
        assert result.willingness < optimum


class TestBehaviour:
    def test_deterministic(self, small_facebook):
        problem = WASOProblem(graph=small_facebook, k=8)
        first = DGreedy().solve(problem)
        second = DGreedy().solve(problem, rng=999)  # rng must not matter
        assert first.members == second.members

    def test_feasible_on_random_graph(self, small_dblp, connectify):
        graph = small_dblp.copy()
        connectify(graph)
        problem = WASOProblem(graph=graph, k=6)
        result = DGreedy().solve(problem)
        assert result.solution.is_feasible(problem)

    def test_required_node_is_seed(self, fig1):
        # Requiring v4 steers greedy away from the v1 anchor.
        problem = WASOProblem(graph=fig1, k=3, required=frozenset({4}))
        result = DGreedy().solve(problem)
        assert 4 in result.members

    def test_forbidden_respected(self, fig1):
        problem = WASOProblem(graph=fig1, k=3, forbidden=frozenset({1}))
        result = DGreedy().solve(problem)
        assert 1 not in result.members
        assert result.members == frozenset({2, 3, 4})

    def test_k_equals_one_picks_max_interest(self, fig1):
        problem = WASOProblem(graph=fig1, k=1)
        result = DGreedy().solve(problem)
        assert result.members == frozenset({1})

    def test_wasodis_mode(self, two_components_graph):
        problem = WASOProblem(
            graph=two_components_graph, k=4, connected=False
        )
        result = DGreedy().solve(problem)
        # Greedy should take the high-interest triangle plus one more.
        assert {3, 4, 5} <= result.members

    def test_stats_single_sample(self, fig1):
        result = DGreedy().solve(WASOProblem(graph=fig1, k=3))
        assert result.stats.samples_drawn == 1

    def test_disconnected_required_seed_can_fail(self, path_graph):
        # Required {0, 4} on a path with k=3 cannot be connected.
        problem = WASOProblem(
            graph=path_graph, k=3, required=frozenset({0, 4})
        )
        with pytest.raises(SolverError):
            DGreedy().solve(problem)
