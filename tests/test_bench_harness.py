"""Tests for the bench support package."""

import pytest

from repro.bench.datasets import bench_graph
from repro.bench.harness import (
    ExperimentTable,
    Series,
    format_seconds,
    geometric_speedup,
    shape_nondecreasing,
    shape_ratio,
    timed,
)


class TestSeries:
    def test_ordering(self):
        series = Series(name="s")
        series.add(3, 30.0)
        series.add(1, 10.0)
        series.add(2, 20.0)
        assert series.xs() == [1, 2, 3]
        assert series.ys() == [10.0, 20.0, 30.0]
        assert series.at(2) == 20.0


class TestExperimentTable:
    def test_add_and_render(self):
        table = ExperimentTable(title="Fig X", x_label="k")
        table.add("alg1", 10, 1.5)
        table.add("alg2", 10, 2.5)
        table.add("alg1", 20, 3.5)
        text = table.render()
        assert "Fig X" in text
        assert "alg1" in text and "alg2" in text
        assert "-" in text  # missing alg2@20 rendered as dash

    def test_series_for_creates_once(self):
        table = ExperimentTable(title="t", x_label="x")
        first = table.series_for("a")
        second = table.series_for("a")
        assert first is second


class TestShapeChecks:
    def test_ratio(self):
        top = Series(name="t", points={1: 10.0, 2: 20.0})
        bottom = Series(name="b", points={1: 5.0, 2: 0.0, 3: 1.0})
        ratios = shape_ratio(top, bottom)
        assert ratios[1] == 2.0
        assert ratios[2] == float("inf")
        assert 3 not in ratios

    def test_nondecreasing(self):
        rising = Series(name="r", points={1: 1.0, 2: 2.0, 3: 2.0})
        assert shape_nondecreasing(rising)
        dipping = Series(name="d", points={1: 2.0, 2: 1.0})
        assert not shape_nondecreasing(dipping)
        assert shape_nondecreasing(dipping, slack=0.6)

    def test_speedup(self):
        speedups = geometric_speedup([2.0, 1.0, 0.5], baseline=2.0)
        assert speedups == [1.0, 2.0, 4.0]


class TestUtilities:
    def test_timed(self):
        value, elapsed = timed(lambda: 42)
        assert value == 42
        assert elapsed >= 0.0

    def test_format_seconds(self):
        assert format_seconds(5e-7).endswith("us")
        assert format_seconds(5e-3).endswith("ms")
        assert format_seconds(2.0).endswith("s")


class TestDatasets:
    def test_cached_identity(self):
        first = bench_graph("dblp", 100)
        second = bench_graph("dblp", 100)
        assert first is second

    def test_unknown_family(self):
        with pytest.raises(ValueError):
            bench_graph("myspace", 100)
