"""Tests for the synthetic dataset generators."""

import pytest

from repro.core.willingness import WillingnessEvaluator
from repro.graph.generators import (
    community_social_graph,
    dblp_like,
    facebook_like,
    figure1_graph,
    figure3_graph,
    flickr_like,
    grid_graph,
    random_social_graph,
    ring_graph,
)


class TestFamilies:
    def test_facebook_regime(self):
        graph = facebook_like(400, seed=1)
        assert graph.number_of_nodes() >= 400
        assert 18.0 < graph.average_degree() < 34.0  # crawl: 26.1

    def test_dblp_regime(self):
        graph = dblp_like(400, seed=1)
        assert 2.5 < graph.average_degree() < 6.0  # crawl: 3.66

    def test_flickr_regime(self):
        graph = flickr_like(400, seed=1)
        assert 17.0 < graph.average_degree() < 34.0  # crawl: ~24.5

    def test_seed_determinism(self):
        first = facebook_like(120, seed=42)
        second = facebook_like(120, seed=42)
        assert set(first.edges()) == set(second.edges())
        for node in first.nodes():
            assert first.interest(node) == second.interest(node)

    def test_different_seeds_differ(self):
        first = facebook_like(120, seed=1)
        second = facebook_like(120, seed=2)
        assert set(first.edges()) != set(second.edges())

    def test_scores_normalized(self):
        graph = facebook_like(200, seed=3)
        interests = [graph.interest(n) for n in graph.nodes()]
        assert max(interests) == pytest.approx(1.0)
        assert min(interests) > 0.0
        for u, v in graph.edges():
            assert 0.0 <= graph.tightness(u, v) <= 1.0

    def test_asymmetric_tightness_present(self):
        graph = facebook_like(200, seed=3)
        asymmetric = sum(
            1
            for u, v in graph.edges()
            if graph.tightness(u, v) != graph.tightness(v, u)
        )
        assert asymmetric > 0

    def test_size_validation(self):
        with pytest.raises(ValueError):
            facebook_like(10)
        with pytest.raises(ValueError):
            dblp_like(5)
        with pytest.raises(ValueError):
            flickr_like(10)
        with pytest.raises(ValueError):
            community_social_graph(5)


class TestCommunityGraph:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            community_social_graph(100, mean_community_size=2)
        with pytest.raises(ValueError):
            community_social_graph(100, within_degree=0)
        with pytest.raises(ValueError):
            community_social_graph(100, between_degree=-1)

    def test_rough_size(self):
        graph = community_social_graph(300, seed=9)
        # Sizes are drawn until they cover n; the last community may
        # overshoot slightly.
        assert 300 <= graph.number_of_nodes() <= 340


class TestSimpleTopologies:
    def test_random_graph(self):
        graph = random_social_graph(50, average_degree=4.0, seed=1)
        assert graph.number_of_nodes() == 50
        assert 2.0 < graph.average_degree() < 7.0

    def test_grid(self):
        graph = grid_graph(4)
        assert graph.number_of_nodes() == 16
        assert graph.number_of_edges() == 24

    def test_ring(self):
        graph = ring_graph(10)
        assert graph.number_of_nodes() == 10
        assert graph.number_of_edges() == 10
        assert all(graph.degree(node) == 2 for node in graph.nodes())

    def test_random_graph_validation(self):
        with pytest.raises(ValueError):
            random_social_graph(1)


class TestFigure1:
    """The reconstruction must reproduce the paper's narrated run."""

    def test_interest_scores(self, fig1):
        assert fig1.interest(1) == 8.0  # the greedy anchor (max interest)
        assert all(fig1.interest(v) == 4.0 for v in (2, 3, 4))

    def test_display_weights(self, fig1):
        # Display weight = tau both directions summed.
        assert fig1.pair_weight(2, 3) == pytest.approx(6.0)
        assert fig1.pair_weight(3, 4) == pytest.approx(7.0)

    def test_optimal_group_willingness(self, fig1):
        evaluator = WillingnessEvaluator(fig1)
        assert evaluator.value({2, 3, 4}) == pytest.approx(30.0)
        assert evaluator.value({1, 2, 3}) == pytest.approx(27.0)


class TestFigure3:
    """Reconstruction anchored on every number the text states."""

    def test_interest_scores(self, fig3):
        assert fig3.interest(3) == pytest.approx(0.8)
        assert fig3.interest(6) == pytest.approx(0.4)
        assert fig3.interest(10) == pytest.approx(0.9)

    def test_start_node_potentials_match_example1(self, fig3):
        # Example 1: both v3 and v10 have potential 4.2 in display units
        # (interest plus the display weight of each incident edge, where
        # pair_weight reconstructs exactly the display weight).
        def display_potential(node):
            return fig3.interest(node) + sum(
                fig3.pair_weight(node, other)
                for other in fig3.neighbors(node)
            )

        assert display_potential(3) == pytest.approx(4.2)
        assert display_potential(10) == pytest.approx(4.2)

    def test_v3_neighbourhood(self, fig3):
        assert set(fig3.neighbors(3)) == {1, 2, 4, 5, 6}

    def test_adding_v6_extends_frontier(self, fig3):
        new_neighbours = set(fig3.neighbors(6)) - {3}
        assert {7, 8, 10} <= new_neighbours

    def test_partial_willingness_from_example1(self, fig3):
        evaluator = WillingnessEvaluator(fig3)
        assert evaluator.value({3}) == pytest.approx(0.8)
        assert evaluator.value({3, 6}) == pytest.approx(2.1)

    def test_optimum_matches_example2(self, fig3):
        evaluator = WillingnessEvaluator(fig3)
        assert evaluator.value({3, 4, 5, 6, 7}) == pytest.approx(9.7)
