"""Cross-cutting property-based tests over the whole solver stack."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.cbas import CBAS
from repro.algorithms.cbas_nd import CBASND
from repro.algorithms.dgreedy import DGreedy
from repro.algorithms.rgreedy import RGreedy
from repro.core.problem import WASOProblem
from repro.core.willingness import WillingnessEvaluator
from repro.exceptions import SolverError
from repro.graph.generators import random_social_graph


@st.composite
def solvable_instance(draw):
    """A random connected WASO instance and a seed."""
    n = draw(st.integers(min_value=8, max_value=30))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    graph = random_social_graph(n, average_degree=4.0, seed=seed)
    components = graph.connected_components()
    anchor = next(iter(components[0]))
    for component in components[1:]:
        graph.add_edge(anchor, next(iter(component)), 0.05)
    k = draw(st.integers(min_value=2, max_value=min(6, n)))
    return WASOProblem(graph=graph, k=k), seed


SOLVER_FACTORIES = [
    lambda: DGreedy(),
    lambda: RGreedy(budget=15, m=3),
    lambda: CBAS(budget=20, m=4, stages=2),
    lambda: CBASND(budget=20, m=4, stages=2),
]


class TestSolverInvariants:
    @given(solvable_instance(), st.integers(min_value=0, max_value=3))
    @settings(max_examples=40, deadline=None)
    def test_every_solver_returns_feasible(self, payload, which):
        problem, seed = payload
        solver = SOLVER_FACTORIES[which]()
        result = solver.solve(problem, rng=seed)
        assert result.solution.is_feasible(problem)

    @given(solvable_instance(), st.integers(min_value=0, max_value=3))
    @settings(max_examples=30, deadline=None)
    def test_reported_willingness_is_correct(self, payload, which):
        """No solver may misreport its own solution's objective value."""
        problem, seed = payload
        solver = SOLVER_FACTORIES[which]()
        result = solver.solve(problem, rng=seed)
        evaluator = WillingnessEvaluator(problem.graph)
        assert result.willingness == pytest.approx(
            evaluator.value(result.members), abs=1e-6
        )

    @given(solvable_instance())
    @settings(max_examples=25, deadline=None)
    def test_required_node_honoured(self, payload):
        problem, seed = payload
        # Pick a required node inside the largest component.
        rng = random.Random(seed)
        anchor = rng.choice(problem.graph.node_list())
        constrained = WASOProblem(
            graph=problem.graph,
            k=problem.k,
            required=frozenset({anchor}),
        )
        result = CBASND(budget=20, m=3, stages=2).solve(constrained, rng=seed)
        assert anchor in result.members

    @given(solvable_instance())
    @settings(max_examples=25, deadline=None)
    def test_wasodis_never_worse_than_connected(self, payload):
        """Relaxing connectivity can only help an exact optimizer."""
        from repro.algorithms.exact import ExactBnB

        problem, _ = payload
        if problem.graph.number_of_nodes() > 14 or problem.k > 4:
            return  # keep exact enumeration cheap
        connected = ExactBnB().solve(problem)
        relaxed = ExactBnB().solve(
            WASOProblem(graph=problem.graph, k=problem.k, connected=False)
        )
        assert relaxed.willingness >= connected.willingness - 1e-9


class TestRngDiscipline:
    @given(solvable_instance())
    @settings(max_examples=15, deadline=None)
    def test_same_seed_same_answer(self, payload):
        problem, seed = payload
        first = CBASND(budget=25, m=3, stages=2).solve(problem, rng=seed)
        second = CBASND(budget=25, m=3, stages=2).solve(problem, rng=seed)
        assert first.members == second.members
