"""Tests for CBAS-ND (cross-entropy neighbour differentiation)."""

import pytest

from repro.algorithms.cbas import CBAS
from repro.algorithms.cbas_nd import CBASND, cbas_nd_g
from repro.core.problem import WASOProblem


class TestConstruction:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            CBASND(rho=0.0)
        with pytest.raises(ValueError):
            CBASND(rho=1.5)
        with pytest.raises(ValueError):
            CBASND(smoothing=-0.1)
        with pytest.raises(ValueError):
            CBASND(smoothing=1.1)

    def test_gaussian_variant_factory(self):
        solver = cbas_nd_g(budget=50)
        assert solver.allocation == "gaussian"
        assert solver.name == "cbas-nd-g"


class TestSolve:
    def test_feasible_solution(self, small_facebook):
        problem = WASOProblem(graph=small_facebook, k=6)
        result = CBASND(budget=100, m=10, stages=4).solve(problem, rng=3)
        assert result.solution.is_feasible(problem)

    def test_finds_fig3_optimum(self, fig3):
        problem = WASOProblem(graph=fig3, k=5)
        result = CBASND(budget=100, m=2, stages=3).solve(problem, rng=3)
        assert result.willingness == pytest.approx(9.7)
        assert result.members == frozenset({3, 4, 5, 6, 7})

    def test_reproducible(self, small_facebook):
        problem = WASOProblem(graph=small_facebook, k=6)
        first = CBASND(budget=100, m=10, stages=4).solve(problem, rng=11)
        second = CBASND(budget=100, m=10, stages=4).solve(problem, rng=11)
        assert first.members == second.members

    def test_smoothing_zero_behaves_like_cbas(self, small_facebook):
        """w = 0 keeps the vector homogeneous -> same search family as CBAS.

        (Theorem 6's proof equates CBAS with CBAS-ND at w = 0.)  We verify
        the weaker executable claim: the solver still works and explores.
        """
        problem = WASOProblem(graph=small_facebook, k=6)
        result = CBASND(budget=80, m=8, stages=4, smoothing=0.0).solve(
            problem, rng=5
        )
        assert result.solution.is_feasible(problem)

    def test_gaussian_allocation(self, small_facebook):
        problem = WASOProblem(graph=small_facebook, k=6)
        result = cbas_nd_g(budget=100, m=10, stages=4).solve(problem, rng=3)
        assert result.solution.is_feasible(problem)

    def test_backtracking_counts(self, small_facebook):
        problem = WASOProblem(graph=small_facebook, k=6)
        solver = CBASND(
            budget=150,
            m=5,
            stages=6,
            backtrack_threshold=10.0,  # huge threshold -> always backtrack
            max_backtracks=2,
        )
        result = solver.solve(problem, rng=3)
        assert result.stats.extra.get("backtracks", 0) >= 1

    def test_no_backtracking_by_default(self, small_facebook):
        problem = WASOProblem(graph=small_facebook, k=6)
        result = CBASND(budget=60, m=5, stages=3).solve(problem, rng=3)
        assert "backtracks" not in result.stats.extra

    def test_required_node(self, small_facebook):
        anchor = next(iter(small_facebook.nodes()))
        problem = WASOProblem(
            graph=small_facebook, k=5, required=frozenset({anchor})
        )
        result = CBASND(budget=60, m=6, stages=3).solve(problem, rng=1)
        assert anchor in result.members

    def test_wasodis(self, two_components_graph):
        problem = WASOProblem(
            graph=two_components_graph, k=4, connected=False
        )
        result = CBASND(budget=40, m=3, stages=2).solve(problem, rng=2)
        assert result.solution.is_feasible(problem)


class TestQualityVsCBAS:
    def test_cbasnd_beats_cbas_on_average(self, small_facebook):
        """Theorem 6's executable counterpart: at equal budget, CBAS-ND's
        mean quality over seeds is at least CBAS's (with slack for noise).
        """
        problem = WASOProblem(graph=small_facebook, k=10)
        seeds = range(6)
        cbas_mean = sum(
            CBAS(budget=200, m=10, stages=6).solve(problem, rng=s).willingness
            for s in seeds
        ) / 6
        nd_mean = sum(
            CBASND(budget=200, m=10, stages=6)
            .solve(problem, rng=s)
            .willingness
            for s in seeds
        ) / 6
        assert nd_mean >= cbas_mean * 0.95
