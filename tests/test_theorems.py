"""Executable checks of the paper's theorems.

Theorem 1 (NP-hardness) is checked through its reduction *construction*:
optimal WASO on a DkS-shaped instance recovers the densest k-subgraph.
Theorems 2–6 are checked directly (exactly where possible, statistically
where the claim is about expectations).
"""

import itertools
import math
import random

import pytest

from repro.algorithms.cbas import CBAS
from repro.algorithms.cbas_nd import CBASND
from repro.algorithms.exact import ExactBnB
from repro.core.problem import WASOProblem
from repro.core.willingness import WillingnessEvaluator
from repro.graph.generators import random_social_graph
from repro.graph.social_graph import SocialGraph
from repro.scenarios.separate_groups import (
    reduce_wasodis,
    strip_virtual_node,
)


class TestTheorem1Reduction:
    """DkS -> WASO: eta = 0, tau = 1 makes W(F) count F's internal edges."""

    def _dks_instance(self, seed):
        rng = random.Random(seed)
        graph = SocialGraph()
        for node in range(9):
            graph.add_node(node, interest=0.0)
        for u in range(9):
            for v in range(u + 1, 9):
                if rng.random() < 0.45:
                    # tau = 0.5 per direction -> each edge contributes 1,
                    # exactly the DkS edge count.
                    graph.add_edge(u, v, 0.5)
        return graph

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_waso_optimum_is_densest_subgraph(self, seed):
        graph = self._dks_instance(seed)
        k = 4
        problem = WASOProblem(graph=graph, k=k, connected=False)
        result = ExactBnB().solve(problem)

        def edges_inside(members):
            return sum(
                1
                for u, v in itertools.combinations(members, 2)
                if graph.has_edge(u, v)
            )

        densest = max(
            edges_inside(set(combo))
            for combo in itertools.combinations(range(9), k)
        )
        assert result.willingness == pytest.approx(float(densest))
        assert edges_inside(result.members) == densest


class TestTheorem2VirtualNode:
    """WASO-dis optimum == (k+1)-node WASO optimum on the augmented graph."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_reduction_equivalence(self, seed):
        graph = random_social_graph(10, average_degree=2.5, seed=seed)
        problem = WASOProblem(graph=graph, k=3, connected=False)
        direct = ExactBnB().solve(problem)

        reduced = reduce_wasodis(problem)
        reduced_result = ExactBnB().solve(reduced)
        members = strip_virtual_node(reduced_result.members)

        evaluator = WillingnessEvaluator(graph)
        assert evaluator.value(members) == pytest.approx(direct.willingness)

    def test_virtual_node_always_selected(self):
        graph = random_social_graph(8, average_degree=2.0, seed=5)
        problem = WASOProblem(graph=graph, k=2, connected=False)
        reduced = reduce_wasodis(problem)
        result = ExactBnB().solve(reduced)
        assert "__waso_virtual__" in result.members


class TestTheorem3Allocation:
    """The overtake-probability bound behind the allocation ratio."""

    @pytest.mark.parametrize(
        "c_i,d_i,n_b,n_i",
        [(-1.0, 0.5, 3, 5), (0.1, 0.9, 6, 2), (-0.2, 0.99, 10, 10)],
    )
    def test_bound(self, c_i, d_i, n_b, n_i):
        rng = random.Random(99)
        c_b, d_b = 0.0, 1.0
        trials = 15000
        overtakes = sum(
            1
            for _ in range(trials)
            if max(rng.uniform(c_i, d_i) for _ in range(n_i))
            >= max(rng.uniform(c_b, d_b) for _ in range(n_b))
        )
        bound = 0.5 * ((d_i - c_b) / (d_b - c_b)) ** n_b
        assert overtakes / trials <= bound + 0.01


class TestTheorem5Approximation:
    """E[Q] >= N_b (1/(N_b+1))^((N_b+1)/N_b) * Q* for CBAS."""

    def test_lower_bound_on_fig3(self, fig3):
        problem = WASOProblem(graph=fig3, k=5)
        optimum = ExactBnB().solve(problem).willingness

        budget, stages, m = 20, 2, 2
        runs = 40
        total = 0.0
        for seed in range(runs):
            result = CBAS(budget=budget, m=m, stages=stages).solve(
                problem, rng=seed
            )
            total += result.willingness
        mean_quality = total / runs

        # N_b after r stages is (4 + m(r-1))/(4 r m) * T (Theorem 5).
        n_b = (4 + m * (stages - 1)) / (4 * stages * m) * budget
        ratio = n_b * (1.0 / (n_b + 1.0)) ** ((n_b + 1.0) / n_b)
        assert mean_quality >= ratio * optimum * 0.9  # Monte-Carlo slack

    def test_ratio_improves_with_budget(self):
        """The guarantee itself is monotone in N_b."""

        def guarantee(n_b):
            return n_b * (1.0 / (n_b + 1.0)) ** ((n_b + 1.0) / n_b)

        values = [guarantee(n) for n in (1, 2, 5, 10, 50)]
        assert values == sorted(values)
        assert values[-1] > 0.9  # approaches 1


class TestTheorem6Dominance:
    """CBAS-ND's expected quality >= CBAS's at equal budget."""

    def test_mean_quality_dominance(self, small_facebook):
        problem = WASOProblem(graph=small_facebook, k=8)
        seeds = range(8)
        cbas = [
            CBAS(budget=120, m=8, stages=5).solve(problem, rng=s).willingness
            for s in seeds
        ]
        cbasnd = [
            CBASND(budget=120, m=8, stages=5)
            .solve(problem, rng=s)
            .willingness
            for s in seeds
        ]
        assert sum(cbasnd) / len(seeds) >= sum(cbas) / len(seeds) * 0.97
