"""End-to-end integration tests across the whole pipeline.

These exercise realistic user journeys rather than single modules:
generate → persist → reload → solve → validate; scenario stacking
(couple + foe + filter on one instance); and solver convergence traces.
"""

import pytest

from repro.algorithms.cbas_nd import CBASND
from repro.algorithms.exact import ExactBnB
from repro.algorithms.ip import IPSolver
from repro.core.api import recommend_group
from repro.core.problem import WASOProblem
from repro.core.willingness import WillingnessEvaluator
from repro.graph.generators import dblp_like, facebook_like
from repro.graph.io import load_json, save_json
from repro.scenarios import (
    attribute_filter,
    filtered_problem,
    mark_foes,
    merge_couple,
)
from repro.scenarios.couples import expand_merged_members


class TestPersistenceRoundtripPipeline:
    def test_generate_save_load_solve(self, tmp_path):
        graph = facebook_like(150, seed=31)
        path = tmp_path / "network.json"
        save_json(graph, path)
        reloaded = load_json(path)

        original = recommend_group(
            graph, k=6, budget=80, m=8, stages=4, rng=5
        )
        replayed = recommend_group(
            reloaded, k=6, budget=80, m=8, stages=4, rng=5
        )
        # Identical graph + identical seed -> identical recommendation.
        assert original.members == replayed.members
        assert original.willingness == pytest.approx(replayed.willingness)


class TestScenarioStacking:
    def test_couple_plus_foe_plus_filter(self):
        graph = facebook_like(120, seed=8)
        nodes = graph.node_list()
        couple = (nodes[0], nodes[1])
        foes = (nodes[2], nodes[3])

        # Tag metadata: everyone is local except one foe.
        for node in nodes:
            graph.set_metadata(node, local=True)
        graph.set_metadata(nodes[4], local=False)

        hostile = mark_foes(graph, [foes])
        base = filtered_problem(
            hostile, k=6, predicate=attribute_filter(local=True)
        )
        merged_problem, merged_node = merge_couple(base, *couple)

        result = CBASND(budget=150, m=10, stages=4).solve(
            merged_problem, rng=8
        )
        attendees = expand_merged_members(result.members, merged_node, *couple)

        # Constraints all hold simultaneously.
        assert (couple[0] in attendees) == (couple[1] in attendees)
        assert not (set(foes) <= attendees)
        assert nodes[4] not in attendees

    def test_solver_agreement_small_instance(self):
        """CBAS-ND with a generous budget matches the exact optimum."""
        graph = dblp_like(40, seed=77)
        components = graph.connected_components()
        anchor = next(iter(components[0]))
        for component in components[1:]:
            graph.add_edge(anchor, next(iter(component)), 0.05)
        problem = WASOProblem(graph=graph, k=5)
        optimum = ExactBnB().solve(problem)
        milp = IPSolver().solve(problem)
        assert milp.willingness == pytest.approx(optimum.willingness)
        heuristic = CBASND(budget=600, m=8, stages=8).solve(problem, rng=1)
        assert heuristic.willingness >= optimum.willingness * 0.9


class TestConvergenceTrace:
    def test_stage_best_recorded_and_monotone(self, small_facebook):
        problem = WASOProblem(graph=small_facebook, k=6)
        result = CBASND(budget=120, m=8, stages=5).solve(problem, rng=2)
        trace = result.stats.extra["stage_best"]
        assert len(trace) == result.stats.stages
        values = [v for v in trace if v is not None]
        assert values == sorted(values)  # best-so-far never decreases
        assert values[-1] == pytest.approx(result.willingness)

    def test_trace_matches_final_quality(self, small_facebook):
        problem = WASOProblem(graph=small_facebook, k=6)
        result = CBASND(budget=60, m=5, stages=3).solve(problem, rng=9)
        evaluator = WillingnessEvaluator(small_facebook)
        assert result.stats.extra["stage_best"][-1] == pytest.approx(
            evaluator.value(result.members)
        )
