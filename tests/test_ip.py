"""Tests for the MILP solvers (compact flow encoding + paper's literal IP)."""

import pytest

from repro.algorithms.exact import ExactBnB
from repro.algorithms.ip import IPSolver
from repro.algorithms.paper_ip import PaperIPSolver
from repro.core.problem import WASOProblem
from repro.exceptions import SolverError
from repro.graph.generators import random_social_graph
from repro.scenarios.foes import mark_foes


class TestKnownInstances:
    def test_figure1(self, fig1):
        result = IPSolver().solve(WASOProblem(graph=fig1, k=3))
        assert result.members == frozenset({2, 3, 4})
        assert result.willingness == pytest.approx(30.0)

    def test_figure3(self, fig3):
        result = IPSolver().solve(WASOProblem(graph=fig3, k=5))
        assert result.willingness == pytest.approx(9.7)

    def test_k_one(self, fig1):
        result = IPSolver().solve(WASOProblem(graph=fig1, k=1))
        assert result.members == frozenset({1})


class TestAgainstBnB:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("k", [3, 5])
    def test_connected_instances(self, seed, k, connectify):
        graph = random_social_graph(16, average_degree=4.0, seed=seed)
        connectify(graph)
        problem = WASOProblem(graph=graph, k=k)
        exact = ExactBnB().solve(problem)
        milp = IPSolver().solve(problem)
        assert milp.willingness == pytest.approx(exact.willingness)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_wasodis_instances(self, seed):
        graph = random_social_graph(14, average_degree=4.0, seed=seed)
        problem = WASOProblem(graph=graph, k=4, connected=False)
        exact = ExactBnB().solve(problem)
        milp = IPSolver().solve(problem)
        assert milp.willingness == pytest.approx(exact.willingness)

    def test_asymmetric_tightness(self, connectify):
        graph = random_social_graph(
            12, average_degree=4.0, seed=9, asymmetric=True
        )
        connectify(graph)
        problem = WASOProblem(graph=graph, k=4)
        exact = ExactBnB().solve(problem)
        milp = IPSolver().solve(problem)
        assert milp.willingness == pytest.approx(exact.willingness)

    def test_lambda_weights(self, connectify):
        graph = random_social_graph(12, average_degree=4.0, seed=4)
        connectify(graph)
        for i, node in enumerate(graph.nodes()):
            graph.set_lam(node, (i % 5) / 4.0)
        problem = WASOProblem(graph=graph, k=4)
        exact = ExactBnB().solve(problem)
        milp = IPSolver().solve(problem)
        assert milp.willingness == pytest.approx(exact.willingness)


class TestConstraints:
    def test_required_nodes(self, fig3):
        problem = WASOProblem(graph=fig3, k=5, required=frozenset({9}))
        result = IPSolver().solve(problem)
        assert 9 in result.members
        exact = ExactBnB().solve(problem)
        assert result.willingness == pytest.approx(exact.willingness)

    def test_forbidden_nodes(self, fig3):
        problem = WASOProblem(graph=fig3, k=5, forbidden=frozenset({5}))
        result = IPSolver().solve(problem)
        assert 5 not in result.members

    def test_foe_edges_negative_weights(self, fig3, connectify):
        """Negative tightness must be honoured (y >= x_i + x_j - 1)."""
        hostile = mark_foes(fig3, [(4, 5)], penalty=-100.0)
        problem = WASOProblem(graph=hostile, k=5)
        result = IPSolver().solve(problem)
        assert not ({4, 5} <= result.members)
        exact = ExactBnB().solve(problem)
        assert result.willingness == pytest.approx(exact.willingness)

    def test_connectivity_enforced(self, two_components_graph):
        problem = WASOProblem(graph=two_components_graph, k=3)
        result = IPSolver().solve(problem)
        assert two_components_graph.is_connected_subset(result.members)
        # The better triangle (3, 4, 5) wins.
        assert result.members == frozenset({3, 4, 5})

    def test_time_limit_validation(self):
        with pytest.raises(ValueError):
            IPSolver(time_limit=0)
        with pytest.raises(ValueError):
            IPSolver(mip_gap=-0.1)


class TestPaperFormulation:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_matches_compact_encoding(self, seed, connectify):
        graph = random_social_graph(8, average_degree=3.0, seed=seed)
        connectify(graph)
        problem = WASOProblem(graph=graph, k=3)
        compact = IPSolver().solve(problem)
        literal = PaperIPSolver().solve(problem)
        assert literal.willingness == pytest.approx(compact.willingness)

    def test_figure1(self, fig1):
        result = PaperIPSolver().solve(WASOProblem(graph=fig1, k=3))
        assert result.willingness == pytest.approx(30.0)

    def test_node_limit_guard(self, small_facebook):
        problem = WASOProblem(graph=small_facebook, k=3)
        with pytest.raises(SolverError):
            PaperIPSolver().solve(problem)

    def test_wasodis_drops_path_block(self, two_components_graph):
        problem = WASOProblem(
            graph=two_components_graph, k=4, connected=False
        )
        result = PaperIPSolver().solve(problem)
        exact = ExactBnB().solve(problem)
        assert result.willingness == pytest.approx(exact.willingness)
