"""Unit tests for the SocialGraph substrate."""

import math

import pytest

from repro.exceptions import (
    DuplicateNodeError,
    EdgeNotFoundError,
    GraphError,
    NodeNotFoundError,
)
from repro.graph.social_graph import SocialGraph


class TestNodes:
    def test_add_and_query(self):
        graph = SocialGraph()
        graph.add_node("x", interest=0.5)
        assert graph.has_node("x")
        assert "x" in graph
        assert graph.interest("x") == 0.5
        assert graph.lam("x") is None
        assert len(graph) == 1

    def test_duplicate_node_rejected(self):
        graph = SocialGraph()
        graph.add_node(1)
        with pytest.raises(DuplicateNodeError):
            graph.add_node(1)

    def test_unknown_node_raises(self):
        graph = SocialGraph()
        with pytest.raises(NodeNotFoundError):
            graph.interest("ghost")
        with pytest.raises(NodeNotFoundError):
            graph.remove_node("ghost")
        with pytest.raises(NodeNotFoundError):
            list(graph.neighbors("ghost"))

    def test_remove_node_drops_incident_edges(self, triangle_graph):
        triangle_graph.remove_node("b")
        assert not triangle_graph.has_node("b")
        assert not triangle_graph.has_edge("a", "b")
        assert triangle_graph.has_edge("a", "c")
        assert triangle_graph.number_of_edges() == 1

    def test_interest_must_be_finite(self):
        graph = SocialGraph()
        with pytest.raises(GraphError):
            graph.add_node(1, interest=math.inf)
        graph.add_node(1)
        with pytest.raises(GraphError):
            graph.set_interest(1, math.nan)

    def test_lambda_validation(self):
        graph = SocialGraph()
        with pytest.raises(GraphError):
            graph.add_node(1, lam=1.5)
        graph.add_node(1, lam=0.25)
        assert graph.weights(1) == (0.25, 0.75)
        graph.set_lam(1, None)
        assert graph.weights(1) == (1.0, 1.0)
        with pytest.raises(GraphError):
            graph.set_lam(1, -0.1)

    def test_default_lambda_applies_to_new_nodes(self):
        graph = SocialGraph(default_lambda=0.4)
        graph.add_node(1)
        assert graph.lam(1) == 0.4
        graph.add_node(2, lam=0.9)
        assert graph.lam(2) == 0.9

    def test_invalid_default_lambda(self):
        with pytest.raises(GraphError):
            SocialGraph(default_lambda=2.0)


class TestEdges:
    def test_symmetric_default(self, triangle_graph):
        assert triangle_graph.tightness("a", "b") == 0.5
        assert triangle_graph.tightness("b", "a") == 0.5

    def test_asymmetric_edge(self):
        graph = SocialGraph()
        graph.add_node(1)
        graph.add_node(2)
        graph.add_edge(1, 2, 0.9, reverse_tightness=0.1)
        assert graph.tightness(1, 2) == 0.9
        assert graph.tightness(2, 1) == 0.1

    def test_self_loop_rejected(self):
        graph = SocialGraph()
        graph.add_node(1)
        with pytest.raises(GraphError):
            graph.add_edge(1, 1, 1.0)

    def test_edge_requires_nodes(self):
        graph = SocialGraph()
        graph.add_node(1)
        with pytest.raises(NodeNotFoundError):
            graph.add_edge(1, 2, 1.0)

    def test_missing_edge_raises(self, triangle_graph):
        triangle_graph.remove_edge("a", "b")
        with pytest.raises(EdgeNotFoundError):
            triangle_graph.tightness("a", "b")
        with pytest.raises(EdgeNotFoundError):
            triangle_graph.remove_edge("a", "b")

    def test_edges_reported_once(self, triangle_graph):
        edges = list(triangle_graph.edges())
        assert len(edges) == 3
        assert triangle_graph.number_of_edges() == 3
        as_sets = {frozenset(edge) for edge in edges}
        assert len(as_sets) == 3

    def test_set_tightness_one_direction(self, triangle_graph):
        triangle_graph.set_tightness("a", "b", 0.99)
        assert triangle_graph.tightness("a", "b") == 0.99
        assert triangle_graph.tightness("b", "a") == 0.5

    def test_degree_and_average(self, triangle_graph):
        assert triangle_graph.degree("a") == 2
        assert triangle_graph.average_degree() == 2.0

    def test_tightness_must_be_finite(self, triangle_graph):
        with pytest.raises(GraphError):
            triangle_graph.set_tightness("a", "b", math.inf)


class TestDerived:
    def test_node_potential(self, triangle_graph):
        # a: interest 1.0 + outgoing 0.5 + 0.75
        assert triangle_graph.node_potential("a") == pytest.approx(2.25)

    def test_node_potential_with_lambda(self, triangle_graph):
        triangle_graph.set_lam("a", 1.0)  # interest only
        assert triangle_graph.node_potential("a") == pytest.approx(1.0)

    def test_pair_weight(self, triangle_graph):
        assert triangle_graph.pair_weight("a", "b") == pytest.approx(1.0)
        triangle_graph.set_lam("a", 1.0)  # a's tightness weight becomes 0
        assert triangle_graph.pair_weight("a", "b") == pytest.approx(0.5)


class TestConnectivity:
    def test_component_of(self, two_components_graph):
        assert two_components_graph.component_of(0) == {0, 1, 2}
        assert two_components_graph.component_of(4) == {3, 4, 5}

    def test_connected_components_sorted_by_size(self, two_components_graph):
        two_components_graph.add_node(99)
        components = two_components_graph.connected_components()
        assert [len(c) for c in components] == [3, 3, 1]

    def test_is_connected_subset(self, path_graph):
        assert path_graph.is_connected_subset({0, 1, 2})
        assert not path_graph.is_connected_subset({0, 2})
        assert path_graph.is_connected_subset({3})
        assert path_graph.is_connected_subset(set())

    def test_is_connected_subset_unknown_node(self, path_graph):
        with pytest.raises(NodeNotFoundError):
            path_graph.is_connected_subset({0, 99})


class TestTransformations:
    def test_copy_is_independent(self, triangle_graph):
        clone = triangle_graph.copy()
        clone.set_interest("a", 42.0)
        clone.remove_edge("a", "b")
        assert triangle_graph.interest("a") == 1.0
        assert triangle_graph.has_edge("a", "b")

    def test_subgraph(self, path_graph):
        sub = path_graph.subgraph({1, 2, 3})
        assert sub.number_of_nodes() == 3
        assert sub.has_edge(1, 2)
        assert sub.has_edge(2, 3)
        assert not sub.has_node(0)
        assert sub.number_of_edges() == 2

    def test_merge_nodes_couple_semantics(self):
        graph = SocialGraph()
        for node, interest in [(1, 1.0), (2, 2.0), (3, 0.5)]:
            graph.add_node(node, interest=interest)
        graph.add_edge(1, 3, 0.3, reverse_tightness=0.4)
        graph.add_edge(2, 3, 0.5, reverse_tightness=0.6)
        graph.add_edge(1, 2, 0.9)

        merged = graph.merge_nodes(1, 2)
        assert merged == 1
        assert graph.interest(1) == pytest.approx(3.0)
        # outgoing = 0.3 + 0.5, incoming = 0.4 + 0.6
        assert graph.tightness(1, 3) == pytest.approx(0.8)
        assert graph.tightness(3, 1) == pytest.approx(1.0)
        assert not graph.has_node(2)

    def test_merge_with_new_id(self, triangle_graph):
        merged = triangle_graph.merge_nodes("a", "b", merged="ab")
        assert merged == "ab"
        assert triangle_graph.has_node("ab")
        assert triangle_graph.interest("ab") == pytest.approx(3.0)

    def test_merge_self_rejected(self, triangle_graph):
        with pytest.raises(GraphError):
            triangle_graph.merge_nodes("a", "a")

    def test_merge_to_existing_id_rejected(self, triangle_graph):
        with pytest.raises(DuplicateNodeError):
            triangle_graph.merge_nodes("a", "b", merged="c")


class TestNetworkxInterop:
    def test_roundtrip(self, triangle_graph):
        nx_graph = triangle_graph.to_networkx()
        back = SocialGraph.from_networkx(nx_graph)
        assert set(back.nodes()) == set(triangle_graph.nodes())
        assert back.interest("b") == 2.0
        assert back.tightness("a", "c") == 0.75

    def test_from_undirected_networkx(self):
        import networkx as nx

        nx_graph = nx.Graph()
        nx_graph.add_node(0, interest=0.7)
        nx_graph.add_node(1)
        nx_graph.add_edge(0, 1, tightness=0.2)
        graph = SocialGraph.from_networkx(nx_graph)
        assert graph.interest(0) == 0.7
        assert graph.interest(1) == 0.0
        assert graph.tightness(0, 1) == 0.2
        assert graph.tightness(1, 0) == 0.2
