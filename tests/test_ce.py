"""Tests for the cross-entropy probability machinery."""

import math

import pytest

from repro.algorithms.sampling import Sample
from repro.ce.convergence import BacktrackController
from repro.ce.probability import SelectionProbabilities, elite_threshold


def _sample(members, willingness):
    return Sample(members=frozenset(members), willingness=willingness)


class TestEliteThreshold:
    def test_paper_example2_quantile(self):
        """Example 2: W = <9.2, 8.9, 8.9, 7.9, 5.9>, rho=0.5 -> gamma=8.9."""
        values = [9.2, 8.9, 8.9, 7.9, 5.9]
        assert elite_threshold(values, 0.5) == pytest.approx(8.9)

    def test_rho_one_is_minimum(self):
        assert elite_threshold([3.0, 1.0, 2.0], 1.0) == 1.0

    def test_tiny_rho_is_maximum(self):
        assert elite_threshold([3.0, 1.0, 2.0], 0.01) == 3.0

    def test_validation(self):
        with pytest.raises(ValueError):
            elite_threshold([], 0.5)
        with pytest.raises(ValueError):
            elite_threshold([1.0], 0.0)
        with pytest.raises(ValueError):
            elite_threshold([1.0], 1.5)


class TestInitialization:
    def test_homogeneous_initialization(self):
        probs = SelectionProbabilities(range(10), k=5)
        # (k - 1) / |V| = 4/10.
        for node in range(10):
            assert probs.probability(node) == pytest.approx(0.4)

    def test_unknown_node_zero(self):
        probs = SelectionProbabilities(range(3), k=2)
        assert probs.probability(99) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SelectionProbabilities([], k=2)
        with pytest.raises(ValueError):
            SelectionProbabilities(range(3), k=0)


class TestUpdateEquation4:
    def test_elite_frequencies_with_full_smoothing(self):
        """With w = 1 the vector equals the elite membership frequency."""
        probs = SelectionProbabilities(range(4), k=2)
        samples = [
            _sample({0, 1}, 10.0),
            _sample({0, 2}, 9.0),
            _sample({2, 3}, 1.0),  # below gamma
        ]
        # rho = 0.5 over 3 samples -> rank ceil(1.5) = 2 -> gamma = 9.0.
        probs.update(samples, rho=0.5, smoothing=1.0)
        assert probs.probability(0) == pytest.approx(1.0)
        assert probs.probability(1) == pytest.approx(0.5)
        assert probs.probability(2) == pytest.approx(0.5)
        assert probs.probability(3) == pytest.approx(0.0)

    def test_paper_example2_smoothed_vector(self):
        """Example 2's smoothing arithmetic:
        p = 0.6*<2/3,1/3,1,...> + 0.4*<4/9,...> = <5.2/9, 3.4/9, 1, ...>."""
        # The paper's Example sets the initial vector to 4/9 on every node
        # except the start node v3 (probability 1).  (Its Definition 3 says
        # (k-1)/|V| = 4/10 instead — a printed inconsistency; we follow the
        # worked example here by installing the vector explicitly.)
        probs = SelectionProbabilities(range(1, 11), k=5)
        for node in range(1, 11):
            probs.set_probability(node, 4.0 / 9.0)
        probs.set_probability(3, 1.0)
        elites_and_low = [
            _sample({1, 3, 4, 5, 6}, 8.9),
            _sample({1, 2, 3, 4, 5}, 8.9),
            _sample({2, 3, 5, 6, 8}, 5.9),
            _sample({2, 3, 4, 5, 7}, 7.9),
            _sample({3, 5, 6, 7, 10}, 9.2),
        ]
        probs.update(elites_and_low, rho=0.5, smoothing=0.6)
        # gamma = 8.9; elites = samples 1, 2, 5; frequencies:
        # v1: 2/3, v2: 1/3, v3: 1, v4: 2/3, v5: 1, v6: 2/3, v7: 1/3,
        # v8..v10: 0 except v10: 1/3.
        assert probs.probability(1) == pytest.approx(0.6 * 2 / 3 + 0.4 * 4 / 9)
        assert probs.probability(2) == pytest.approx(0.6 * 1 / 3 + 0.4 * 4 / 9)
        assert probs.probability(3) == pytest.approx(1.0)
        assert probs.probability(5) == pytest.approx(0.6 * 1.0 + 0.4 * 4 / 9)
        assert probs.probability(8) == pytest.approx(0.6 * 0.0 + 0.4 * 4 / 9)

    def test_smoothing_keeps_probabilities_interior(self):
        probs = SelectionProbabilities(range(4), k=2)
        samples = [_sample({0, 1}, 10.0)]
        probs.update(samples, rho=0.5, smoothing=0.9)
        for node in range(4):
            assert 0.0 < probs.probability(node) < 1.0 or node in (0, 1)
        # Nodes absent from elites keep a residue of the old probability.
        assert probs.probability(3) > 0.0

    def test_gamma_monotone_across_stages(self):
        probs = SelectionProbabilities(range(4), k=2)
        probs.update([_sample({0, 1}, 10.0)], rho=0.5, smoothing=0.5)
        first_gamma = probs.gamma
        probs.update([_sample({2, 3}, 1.0)], rho=0.5, smoothing=0.5)
        assert probs.gamma == first_gamma  # did not decrease

    def test_update_below_gamma_is_noop(self):
        probs = SelectionProbabilities(range(4), k=2)
        probs.update([_sample({0, 1}, 10.0)], rho=0.5, smoothing=0.5)
        before = probs.as_dict()
        movement = probs.update(
            [_sample({2, 3}, 1.0)], rho=0.5, smoothing=0.5
        )
        assert movement == 0.0
        assert probs.as_dict() == before

    def test_empty_samples_noop(self):
        probs = SelectionProbabilities(range(4), k=2)
        assert probs.update([], rho=0.5, smoothing=0.5) == 0.0

    def test_movement_is_squared_distance(self):
        probs = SelectionProbabilities(range(2), k=2)
        before = probs.as_dict()
        movement = probs.update(
            [_sample({0, 1}, 5.0)], rho=1.0, smoothing=1.0
        )
        expected = sum(
            (1.0 - before[node]) ** 2 for node in range(2)
        )
        assert movement == pytest.approx(expected)

    def test_validation(self):
        probs = SelectionProbabilities(range(3), k=2)
        with pytest.raises(ValueError):
            probs.update([_sample({0}, 1.0)], rho=0.0, smoothing=0.5)
        with pytest.raises(ValueError):
            probs.update([_sample({0}, 1.0)], rho=0.5, smoothing=2.0)


class TestSnapshots:
    def test_snapshot_restore(self):
        probs = SelectionProbabilities(range(3), k=2)
        before = probs.as_dict()
        saved = probs.snapshot()
        probs.update([_sample({0, 1}, 3.0)], rho=1.0, smoothing=1.0)
        assert probs.as_dict() != before
        probs.restore(saved)
        assert probs.as_dict() == before

    def test_restore_rejects_length_mismatch(self):
        probs = SelectionProbabilities(range(3), k=2)
        with pytest.raises(ValueError):
            probs.restore([0.5])

    def test_kl_distance_zero_for_identical(self):
        first = SelectionProbabilities(range(5), k=3)
        second = SelectionProbabilities(range(5), k=3)
        assert first.kl_distance(second) == pytest.approx(0.0, abs=1e-9)

    def test_kl_distance_positive_when_different(self):
        first = SelectionProbabilities(range(5), k=3)
        second = SelectionProbabilities(range(5), k=3)
        second.update([_sample({0, 1, 2}, 5.0)], rho=1.0, smoothing=1.0)
        assert first.kl_distance(second) > 0.0


class TestCompiledDomain:
    """Array-backed vectors in the compiled int-id domain."""

    def _paired_vectors(self):
        # Compiled id space: nodes "a".."f" -> ids 0..5; candidates skip
        # the forbidden node "e" (id 4), whose slot must stay 0.0.
        index_of = {name: i for i, name in enumerate("abcdef")}
        candidates = [n for n in "abcdf"]
        local = SelectionProbabilities(candidates, k=3)
        compiled = SelectionProbabilities(
            candidates, k=3, index_of=index_of, size=len(index_of)
        )
        return local, compiled, index_of

    def test_array_exposed_only_in_compiled_domain(self):
        local, compiled, index_of = self._paired_vectors()
        assert local.array is None
        assert local.index_map is None
        assert compiled.index_map is index_of
        assert len(compiled.array) == len(index_of)

    def test_non_candidate_slots_stay_zero(self):
        _, compiled, index_of = self._paired_vectors()
        assert compiled.array[index_of["e"]] == 0.0
        assert compiled.probability("e") == 0.0
        samples = [_sample({"a", "b", "c"}, 5.0)]
        compiled.update(samples, rho=1.0, smoothing=0.9)
        assert compiled.array[index_of["e"]] == 0.0

    def test_domains_bit_identical_after_updates(self):
        local, compiled, index_of = self._paired_vectors()
        stages = [
            [_sample({"a", "b", "c"}, 9.0), _sample({"b", "c", "d"}, 4.0)],
            [_sample({"a", "c", "f"}, 11.0), _sample({"a", "b", "f"}, 10.0)],
        ]
        for samples in stages:
            movement_local = local.update(samples, rho=0.5, smoothing=0.7)
            movement_compiled = compiled.update(
                samples, rho=0.5, smoothing=0.7
            )
            assert movement_local == movement_compiled
            assert local.gamma == compiled.gamma
            assert local.as_dict() == compiled.as_dict()
        # Array slot content equals the dict view through the id mapping.
        for node, value in compiled.as_dict().items():
            assert compiled.array[index_of[node]] == value

    def test_indices_fast_path_matches_member_translation(self):
        _, via_members, index_of = self._paired_vectors()
        _, via_indices, _ = self._paired_vectors()
        members = {"a", "c", "f"}
        with_ids = Sample(
            members=frozenset(members),
            willingness=7.0,
            indices=tuple(index_of[n] for n in members),
        )
        without_ids = _sample(members, 7.0)
        assert without_ids.indices is None
        via_members.update([without_ids], rho=1.0, smoothing=0.8)
        via_indices.update([with_ids], rho=1.0, smoothing=0.8)
        assert via_members.as_dict() == via_indices.as_dict()

    def test_snapshot_restore_preserves_array_identity(self):
        _, compiled, _ = self._paired_vectors()
        borrowed = compiled.array
        saved = compiled.snapshot()
        compiled.update([_sample({"a", "b", "c"}, 3.0)], rho=1.0, smoothing=1.0)
        compiled.restore(saved)
        # In-place restore: a sampler's borrowed reference stays valid.
        assert compiled.array is borrowed
        assert compiled.snapshot() == saved

    def test_set_probability_unknown_node(self):
        _, compiled, _ = self._paired_vectors()
        with pytest.raises(KeyError):
            compiled.set_probability("zzz", 0.5)


class TestBacktrackController:
    def test_disabled_by_default(self):
        controller = BacktrackController(threshold=None)
        probs = SelectionProbabilities(range(3), k=2)
        controller.remember(probs)
        assert not controller.observe(probs, movement=0.0)

    def test_backtracks_below_threshold(self):
        controller = BacktrackController(threshold=0.5, max_backtracks=2)
        probs = SelectionProbabilities(range(3), k=2)
        controller.remember(probs)
        before = probs.as_dict()
        probs.update([_sample({0, 1}, 5.0)], rho=1.0, smoothing=1.0)
        assert controller.observe(probs, movement=0.1)
        assert probs.as_dict() == before
        assert controller.backtracks_used == 1

    def test_no_backtrack_above_threshold(self):
        controller = BacktrackController(threshold=0.5)
        probs = SelectionProbabilities(range(3), k=2)
        controller.remember(probs)
        assert not controller.observe(probs, movement=0.9)

    def test_budget_of_backtracks(self):
        controller = BacktrackController(threshold=1e9, max_backtracks=1)
        probs = SelectionProbabilities(range(3), k=2)
        controller.remember(probs)
        assert controller.observe(probs, movement=0.0)
        controller.remember(probs)
        assert not controller.observe(probs, movement=0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            BacktrackController(threshold=-1.0)
        with pytest.raises(ValueError):
            BacktrackController(threshold=1.0, max_backtracks=-1)

    def test_no_observe_before_remember(self):
        controller = BacktrackController(threshold=0.5)
        probs = SelectionProbabilities(range(3), k=2)
        assert not controller.observe(probs, movement=0.0)


class TestLazyDecay:
    """The lazily-applied (1−w) decay must equal the eager pass bitwise.

    The eager reference below replays the historical implementation:
    every update multiplies the whole array by ``keep`` with one
    comprehension, then overwrites the touched slots.  The lazy path
    (compute_movement=False) must materialize to the exact same floats —
    successive factored multiplies, never an accumulated scale product.
    """

    @staticmethod
    def _eager_reference(rounds, length, k=3):
        probs = [0.0] * length
        initial = (k - 1) / length
        for slot in range(length):
            probs[slot] = initial
        for smoothing, counts, size in rounds:
            keep = 1.0 - smoothing
            old = {slot: probs[slot] for slot in counts}
            probs[:] = [keep * value for value in probs]
            for slot in sorted(counts):
                probs[slot] = smoothing * (counts[slot] / size) + keep * old[slot]
        return probs

    @staticmethod
    def _rounds(count, length, seed=0):
        rng = __import__("random").Random(seed)
        rounds = []
        for _ in range(count):
            touched = rng.sample(range(length), 4)
            counts = {slot: rng.randrange(1, 4) for slot in touched}
            rounds.append((rng.choice([0.9, 0.7, 0.5]), counts, 3))
        return rounds

    def test_lazy_matches_eager_without_reads(self):
        length = 32
        rounds = self._rounds(6, length)
        vector = SelectionProbabilities(
            range(length), 3, index_of={i: i for i in range(length)}
        )
        for smoothing, counts, size in rounds:
            vector.update_from_counts(counts, size, smoothing)
        assert vector.snapshot() == self._eager_reference(rounds, length)

    def test_lazy_matches_eager_with_interleaved_reads(self):
        """Per-slot reads between rounds must not perturb materialization."""
        length = 32
        rounds = self._rounds(6, length, seed=1)
        vector = SelectionProbabilities(
            range(length), 3, index_of={i: i for i in range(length)}
        )
        rng = __import__("random").Random(9)
        for smoothing, counts, size in rounds:
            vector.update_from_counts(counts, size, smoothing)
            # Probe a few slots (reference-path style single reads) and
            # occasionally the whole array (compiled-path draws).
            for slot in rng.sample(range(length), 3):
                vector.probability(slot)
            if rng.random() < 0.5:
                assert vector.array is not None
        assert vector.snapshot() == self._eager_reference(rounds, length)

    def test_movement_path_matches_lazy_values(self):
        """compute_movement=True (eager) and False (lazy) agree bitwise."""
        length = 16
        rounds = self._rounds(5, length, seed=2)
        lazy = SelectionProbabilities(
            range(length), 3, index_of={i: i for i in range(length)}
        )
        eager = SelectionProbabilities(
            range(length), 3, index_of={i: i for i in range(length)}
        )
        for smoothing, counts, size in rounds:
            lazy.update_from_counts(counts, size, smoothing)
            eager.update_from_counts(
                counts, size, smoothing, compute_movement=True
            )
        assert lazy.snapshot() == eager.snapshot()

    def test_replicate_preserves_pending_rounds(self):
        length = 8
        vector = SelectionProbabilities(
            range(length), 3, index_of={i: i for i in range(length)}
        )
        vector.update_from_counts({0: 1, 1: 1, 2: 1}, 1, 0.9)
        clone = vector.replicate()
        assert clone.snapshot() == vector.snapshot()

    def test_cross_engine_draws_bit_identical_under_lazy_decay(self):
        """Seeded CBAS-ND runs stay engine-identical with lazy decay.

        Many stages on a small budget maximize pending-round depth (some
        starts skip stages, accumulating multiple lazy rounds) — the
        regime most likely to expose a decay that is *almost* the eager
        value.  Both engines share the lazy implementation, but they
        read through different paths (flat array vs per-node dict
        probes), so any materialization drift would desynchronize the
        weighted draws and the resulting groups.
        """
        from repro.algorithms.cbas_nd import CBASND
        from repro.core.problem import WASOProblem
        from repro.graph.generators import facebook_like

        graph = facebook_like(150, seed=21)
        problem = WASOProblem(graph=graph, k=5)
        for seed in (3, 11):
            compiled = CBASND(budget=160, m=8, stages=8, engine="compiled")
            reference = CBASND(budget=160, m=8, stages=8, engine="reference")
            got = compiled.solve(problem, rng=seed)
            want = reference.solve(problem, rng=seed)
            assert got.members == want.members
            assert got.willingness == want.willingness
            # And the surviving CE vectors themselves agree bitwise.
            for start, vector in compiled.last_warm_state.vectors.items():
                twin = reference.last_warm_state.vectors[start]
                assert vector.as_dict() == twin.as_dict()
