"""Tests for the high-level API and the solver registry."""

import pytest

from repro.algorithms.registry import available_solvers, make_solver
from repro.core.api import recommend_group, solve_k_range


class TestRegistry:
    def test_all_names_construct(self):
        for name in available_solvers():
            solver = make_solver(name)
            assert hasattr(solver, "solve")

    def test_expected_names_present(self):
        names = available_solvers()
        for expected in (
            "dgreedy",
            "rgreedy",
            "cbas",
            "cbas-nd",
            "cbas-nd-g",
            "exact-bnb",
            "ip",
            "paper-ip",
        ):
            assert expected in names

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_solver("does-not-exist")

    def test_kwargs_forwarded(self):
        solver = make_solver("cbas-nd", budget=77, m=5)
        assert solver.budget == 77
        assert solver.m == 5


class TestRecommendGroup:
    def test_basic(self, small_facebook):
        result = recommend_group(
            small_facebook, k=5, budget=60, m=5, stages=3, rng=1
        )
        assert len(result.members) == 5
        assert small_facebook.is_connected_subset(result.members)

    def test_solver_choice(self, fig3):
        result = recommend_group(fig3, k=5, solver="exact-bnb")
        assert result.willingness == pytest.approx(9.7)

    def test_required_and_forbidden(self, fig3):
        result = recommend_group(
            fig3,
            k=5,
            solver="exact-bnb",
            required=[10],
            forbidden=[1],
        )
        assert 10 in result.members
        assert 1 not in result.members

    def test_disconnected(self, two_components_graph):
        result = recommend_group(
            two_components_graph,
            k=4,
            solver="exact-bnb",
            connected=False,
        )
        assert len(result.members) == 4


class TestSolveKRange:
    def test_range(self, fig3):
        results = solve_k_range(fig3, 2, 4, solver="exact-bnb")
        assert sorted(results) == [2, 3, 4]
        # Willingness is monotone in k for non-negative scores.
        assert (
            results[2].willingness
            <= results[3].willingness
            <= results[4].willingness
        )

    def test_validation(self, fig3):
        with pytest.raises(ValueError):
            solve_k_range(fig3, 0, 3)
        with pytest.raises(ValueError):
            solve_k_range(fig3, 4, 2)

    def test_single_k(self, fig3):
        results = solve_k_range(fig3, 5, 5, solver="exact-bnb")
        assert list(results) == [5]
        assert results[5].willingness == pytest.approx(9.7)
