"""Property-based round-trip tests: persistence and transformations.

Hypothesis generates arbitrary small social graphs (random topology,
asymmetric tightness, mixed λ, metadata) and checks that save/load and
copy/subgraph are lossless, and that the couple merge obeys its algebra.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.willingness import willingness
from repro.graph.io import load_edge_list, load_json, save_edge_list, save_json
from repro.graph.social_graph import SocialGraph


@st.composite
def social_graphs(draw):
    """Arbitrary small social graph with fully general attributes."""
    n = draw(st.integers(min_value=1, max_value=10))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    graph = SocialGraph()
    for node in range(n):
        lam = rng.choice([None, round(rng.random(), 3)])
        graph.add_node(
            node,
            interest=round(rng.uniform(-5.0, 5.0), 4),
            lam=lam,
        )
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < 0.4:
                graph.add_edge(
                    u,
                    v,
                    round(rng.uniform(-1.0, 1.0), 4),
                    reverse_tightness=round(rng.uniform(-1.0, 1.0), 4),
                )
    return graph


def _assert_same(first: SocialGraph, second: SocialGraph) -> None:
    assert set(first.nodes()) == set(second.nodes())
    for node in first.nodes():
        assert first.interest(node) == second.interest(node)
        assert first.lam(node) == second.lam(node)
    assert set(map(frozenset, first.edges())) == set(
        map(frozenset, second.edges())
    )
    for u, v in first.edges():
        assert first.tightness(u, v) == second.tightness(u, v)
        assert first.tightness(v, u) == second.tightness(v, u)


class TestPersistenceProperties:
    @given(social_graphs())
    @settings(max_examples=40, deadline=None)
    def test_json_roundtrip(self, tmp_path_factory, graph):
        path = tmp_path_factory.mktemp("json") / "g.json"
        save_json(graph, path)
        _assert_same(graph, load_json(path))

    @given(social_graphs())
    @settings(max_examples=40, deadline=None)
    def test_edge_list_roundtrip(self, tmp_path_factory, graph):
        path = tmp_path_factory.mktemp("edges") / "g.txt"
        save_edge_list(graph, path)
        _assert_same(graph, load_edge_list(path))


class TestTransformationProperties:
    @given(social_graphs())
    @settings(max_examples=40, deadline=None)
    def test_copy_preserves_willingness(self, graph):
        members = set(graph.nodes())
        assert willingness(graph.copy(), members) == pytest.approx(
            willingness(graph, members)
        )

    @given(social_graphs())
    @settings(max_examples=40, deadline=None)
    def test_subgraph_of_everything_is_identity(self, graph):
        _assert_same(graph, graph.subgraph(graph.nodes()))

    @given(social_graphs(), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_merge_algebra(self, graph, seed):
        """W(merged, F∪{a}) == W(original, F∪{i,j}) − pair_weight(i, j)
        for any outside set F.

        The identity holds for the plain Eq.-1 weighting: the merge sums
        interests and tightness, which only commutes with the objective
        when every node weighs them equally — so λ is cleared first.
        """
        if graph.number_of_nodes() < 3:
            return
        graph = graph.copy()
        for node in graph.nodes():
            graph.set_lam(node, None)
        rng = random.Random(seed)
        nodes = graph.node_list()
        i, j = rng.sample(nodes, 2)
        others = [n for n in nodes if n not in (i, j)]
        subset = {n for n in others if rng.random() < 0.5}

        internal = (
            graph.pair_weight(i, j) if graph.has_edge(i, j) else 0.0
        )
        original = willingness(graph, subset | {i, j})

        merged_graph = graph.copy()
        merged = merged_graph.merge_nodes(i, j, merged="merged")
        via_merge = willingness(merged_graph, subset | {merged})
        assert via_merge == pytest.approx(original - internal, abs=1e-9)
