"""Scenario transformations through the compiled engine.

The §2.2 / §4.4.3 scenario transforms (couples, foes, themed variants,
metadata filters) rewrite the graph and/or the ``required``/``forbidden``
sets before solving.  These tests run each transformed instance through
CBAS-ND on both engines and hold the bit-identity line — in particular
around the interplay of ``required``/``forbidden`` with the compiled id
remapping (merged nodes get fresh ids; filtered nodes become forbidden
and must never reach a frontier).
"""

import random

import pytest

from repro.algorithms.cbas_nd import CBASND
from repro.core.problem import WASOProblem
from repro.graph.generators import facebook_like
from repro.scenarios import (
    exhibition_problem,
    housewarming_problem,
    invitation_problem,
    mark_foes,
    merge_couple,
)
from repro.scenarios.couples import expand_merged_members
from repro.scenarios.filters import attribute_filter, filtered_problem


def _solve_both(problem, seed=3, **kwargs):
    """Solve on both engines and assert bit-identical seeded results."""
    kwargs.setdefault("budget", 120)
    kwargs.setdefault("m", 6)
    kwargs.setdefault("stages", 3)
    reference = CBASND(engine="reference", **kwargs).solve(problem, rng=seed)
    compiled = CBASND(engine="compiled", **kwargs).solve(problem, rng=seed)
    assert reference.members == compiled.members
    assert reference.willingness == compiled.willingness
    assert reference.stats.samples_drawn == compiled.stats.samples_drawn
    assert reference.stats.failed_samples == compiled.stats.failed_samples
    return compiled


@pytest.fixture(scope="module")
def scenario_graph():
    return facebook_like(150, seed=31)


class TestCouplesCompiled:
    def test_merged_problem_engine_equivalent(self, scenario_graph):
        u, v = next(iter(scenario_graph.edges()))
        problem = WASOProblem(graph=scenario_graph, k=6)
        merged_problem, merged_node = merge_couple(problem, u, v)
        result = _solve_both(merged_problem, seed=5)
        assert merged_problem.k == 5
        expanded = expand_merged_members(result.members, merged_node, u, v)
        assert (u in expanded) == (v in expanded)

    def test_required_merged_node_engine_equivalent(self, scenario_graph):
        u, v = next(iter(scenario_graph.edges()))
        problem = WASOProblem(
            graph=scenario_graph, k=6, required=frozenset({v})
        )
        # The remapped required set must survive the fresh id space of the
        # merged graph's compiled freeze on both engines.
        merged_problem, merged_node = merge_couple(problem, u, v)
        assert merged_node in merged_problem.required
        result = _solve_both(merged_problem, seed=11)
        assert merged_node in result.members


class TestFoesCompiled:
    def test_foe_penalty_engine_equivalent(self, scenario_graph):
        edges = list(scenario_graph.edges())[:3]
        hostile = mark_foes(scenario_graph, edges)
        problem = WASOProblem(graph=hostile, k=6)
        _solve_both(problem, seed=7)

    def test_foes_with_forbidden_engine_equivalent(self, scenario_graph):
        edges = list(scenario_graph.edges())[:2]
        hostile = mark_foes(scenario_graph, edges)
        banned = frozenset(list(hostile.nodes())[:15])
        problem = WASOProblem(graph=hostile, k=5, forbidden=banned)
        result = _solve_both(problem, seed=13)
        assert not (result.members & banned)


class TestThemedCompiled:
    def test_exhibition_engine_equivalent(self, scenario_graph):
        # λ = 1, WASO-dis: the compiled frontier is the full allowed set.
        problem = exhibition_problem(scenario_graph, k=5)
        assert not problem.connected
        _solve_both(problem, seed=17)

    def test_housewarming_engine_equivalent(self, scenario_graph):
        problem = housewarming_problem(scenario_graph, k=5)
        _solve_both(problem, seed=19)

    def test_invitation_engine_equivalent(self, scenario_graph):
        host = max(
            scenario_graph.nodes(), key=lambda n: scenario_graph.degree(n)
        )
        problem = invitation_problem(scenario_graph, host=host, k=4)
        result = _solve_both(problem, seed=23, m=4)
        assert host in result.members


class TestFiltersCompiled:
    def test_attribute_filter_engine_equivalent(self, scenario_graph):
        rng = random.Random(5)
        for node in scenario_graph.nodes():
            scenario_graph.set_metadata(
                node, city=rng.choice(["north", "south"])
            )
        organizer = next(iter(scenario_graph.nodes()))
        problem = filtered_problem(
            scenario_graph,
            k=5,
            predicate=attribute_filter(city="north"),
            required={organizer},
        )
        # The filtered-out half is forbidden: the compiled allowed mask
        # must hide it from every frontier on both engines.
        result = _solve_both(problem, seed=29)
        assert organizer in result.members
        for node in result.members - {organizer}:
            assert scenario_graph.metadata(node)["city"] == "north"
        assert not (result.members & problem.forbidden)
