"""Tests for the online re-planning state machine (§4.4.1)."""

import pytest

from repro.algorithms.cbas_nd import CBASND
from repro.core.problem import WASOProblem
from repro.exceptions import InfeasibleProblemError
from repro.online import OnlinePlanner
from repro.online.replanning import ResponseState


def _planner(graph, k=5, rng=7):
    problem = WASOProblem(graph=graph, k=k)
    solver = CBASND(budget=60, m=6, stages=3)
    return OnlinePlanner(problem, solver=solver, rng=rng)


class TestPlanning:
    def test_initial_plan_feasible(self, small_facebook):
        planner = _planner(small_facebook)
        solution = planner.plan()
        assert len(solution.members) == 5
        assert small_facebook.is_connected_subset(solution.members)

    def test_everyone_invited(self, small_facebook):
        planner = _planner(small_facebook)
        solution = planner.plan()
        assert set(planner.invitations) >= set(solution.members)

    def test_accept_then_replan_keeps_confirmed(self, small_facebook):
        planner = _planner(small_facebook)
        solution = planner.plan()
        keeper = next(iter(solution.members))
        planner.record_accept(keeper)
        refreshed = planner.plan()
        assert keeper in refreshed.members

    def test_decline_removes_and_replans(self, small_facebook):
        planner = _planner(small_facebook)
        solution = planner.plan()
        victim = next(iter(solution.members))
        refreshed = planner.record_decline(victim)
        assert victim not in refreshed.members
        assert len(refreshed.members) == 5

    def test_decline_then_accept_conflicts(self, small_facebook):
        planner = _planner(small_facebook)
        solution = planner.plan()
        victim = next(iter(solution.members))
        planner.record_decline(victim)
        with pytest.raises(ValueError):
            planner.record_accept(victim)

    def test_accept_then_decline_conflicts(self, small_facebook):
        planner = _planner(small_facebook)
        solution = planner.plan()
        keeper = next(iter(solution.members))
        planner.record_accept(keeper)
        with pytest.raises(ValueError):
            planner.record_decline(keeper)

    def test_uninvited_person_rejected(self, small_facebook):
        planner = _planner(small_facebook)
        planner.plan()
        with pytest.raises(ValueError):
            planner.record_accept("nobody")

    def test_finalize_accepts_pending(self, small_facebook):
        planner = _planner(small_facebook)
        planner.plan()
        final = planner.finalize()
        assert len(final.members) == 5
        assert all(
            planner.invitations[node].state is ResponseState.ACCEPTED
            for node in final.members
        )

    def test_finalize_plans_if_needed(self, small_facebook):
        planner = _planner(small_facebook)
        final = planner.finalize()
        assert len(final.members) == 5

    def test_many_declines_eventually_infeasible(self, path_graph):
        problem = WASOProblem(graph=path_graph, k=4)
        planner = OnlinePlanner(
            problem, solver=CBASND(budget=20, m=2, stages=2), rng=1
        )
        solution = planner.plan()
        # Declining two of five path nodes leaves no connected 4-set.
        victims = list(solution.members)[:2]
        with pytest.raises(InfeasibleProblemError):
            for victim in victims:
                planner.record_decline(victim)

    def test_base_required_nodes_preserved(self, small_facebook):
        anchor = next(iter(small_facebook.nodes()))
        problem = WASOProblem(
            graph=small_facebook, k=5, required=frozenset({anchor})
        )
        planner = OnlinePlanner(
            problem, solver=CBASND(budget=60, m=6, stages=3), rng=3
        )
        solution = planner.plan()
        assert anchor in solution.members
        victim = next(iter(solution.members - {anchor}))
        refreshed = planner.record_decline(victim)
        assert anchor in refreshed.members
