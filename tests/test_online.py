"""Tests for the online re-planning state machine (§4.4.1)."""

import pytest

from repro.algorithms.cbas_nd import CBASND
from repro.core.problem import WASOProblem
from repro.exceptions import InfeasibleProblemError
from repro.online import OnlinePlanner
from repro.online.replanning import ResponseState


def _planner(graph, k=5, rng=7):
    problem = WASOProblem(graph=graph, k=k)
    solver = CBASND(budget=60, m=6, stages=3)
    return OnlinePlanner(problem, solver=solver, rng=rng)


class TestPlanning:
    def test_initial_plan_feasible(self, small_facebook):
        planner = _planner(small_facebook)
        solution = planner.plan()
        assert len(solution.members) == 5
        assert small_facebook.is_connected_subset(solution.members)

    def test_everyone_invited(self, small_facebook):
        planner = _planner(small_facebook)
        solution = planner.plan()
        assert set(planner.invitations) >= set(solution.members)

    def test_accept_then_replan_keeps_confirmed(self, small_facebook):
        planner = _planner(small_facebook)
        solution = planner.plan()
        keeper = next(iter(solution.members))
        planner.record_accept(keeper)
        refreshed = planner.plan()
        assert keeper in refreshed.members

    def test_decline_removes_and_replans(self, small_facebook):
        planner = _planner(small_facebook)
        solution = planner.plan()
        victim = next(iter(solution.members))
        refreshed = planner.record_decline(victim)
        assert victim not in refreshed.members
        assert len(refreshed.members) == 5

    def test_decline_then_accept_conflicts(self, small_facebook):
        planner = _planner(small_facebook)
        solution = planner.plan()
        victim = next(iter(solution.members))
        planner.record_decline(victim)
        with pytest.raises(ValueError):
            planner.record_accept(victim)

    def test_accept_then_decline_conflicts(self, small_facebook):
        planner = _planner(small_facebook)
        solution = planner.plan()
        keeper = next(iter(solution.members))
        planner.record_accept(keeper)
        with pytest.raises(ValueError):
            planner.record_decline(keeper)

    def test_uninvited_person_rejected(self, small_facebook):
        planner = _planner(small_facebook)
        planner.plan()
        with pytest.raises(ValueError):
            planner.record_accept("nobody")

    def test_finalize_accepts_pending(self, small_facebook):
        planner = _planner(small_facebook)
        planner.plan()
        final = planner.finalize()
        assert len(final.members) == 5
        assert all(
            planner.invitations[node].state is ResponseState.ACCEPTED
            for node in final.members
        )

    def test_finalize_plans_if_needed(self, small_facebook):
        planner = _planner(small_facebook)
        final = planner.finalize()
        assert len(final.members) == 5

    def test_many_declines_eventually_infeasible(self, path_graph):
        problem = WASOProblem(graph=path_graph, k=4)
        planner = OnlinePlanner(
            problem, solver=CBASND(budget=20, m=2, stages=2), rng=1
        )
        solution = planner.plan()
        # Declining two of five path nodes leaves no connected 4-set.
        victims = list(solution.members)[:2]
        with pytest.raises(InfeasibleProblemError):
            for victim in victims:
                planner.record_decline(victim)

    def test_replan_stats_tracked(self, small_facebook):
        planner = _planner(small_facebook)
        solution = planner.plan()
        assert planner.replan_count == 0
        extra = planner.last_result.stats.extra
        assert extra["replans"] == 0
        assert len(extra["replan_samples"]) == 1
        victims = sorted(solution.members, key=repr)[:2]
        for victim in victims:
            planner.record_decline(victim)
        assert planner.replan_count == 2
        extra = planner.last_result.stats.extra
        assert extra["replans"] == 2
        assert len(extra["replan_samples"]) == 3
        assert extra["replan_samples"] == planner.replan_samples
        assert all(samples > 0 for samples in extra["replan_samples"])

    def test_replan_runs_warm(self, small_facebook):
        planner = _planner(small_facebook)
        solution = planner.plan()
        # The initial plan is cold...
        assert "warm_start" not in planner.last_result.stats.extra
        victim = next(iter(solution.members))
        planner.record_decline(victim)
        # ... the re-plan reuses the previous phase-1 starts.
        assert planner.last_result.stats.extra.get("warm_start") is True
        # The solver itself is left cold; the planner holds the state.
        assert planner.solver.warm_state is None
        warm = planner.solver.last_warm_state
        assert warm is not None
        assert victim not in warm.starts  # declined starts are dropped

    def test_warm_vectors_survive_replans(self, small_facebook):
        planner = _planner(small_facebook)
        solution = planner.plan()
        first_vectors = dict(planner.solver.last_warm_state.vectors)
        victim = next(iter(solution.members))
        planner.record_decline(victim)
        second = planner.solver.last_warm_state.vectors
        surviving = set(first_vectors) & set(second)
        assert surviving
        # Surviving starts keep refining the same vector objects instead
        # of resetting to the homogeneous prior.
        assert any(
            second[start] is first_vectors[start] for start in surviving
        )

    def test_warm_vectors_reset_elite_threshold(self, small_facebook):
        """Reused vectors keep probabilities but not the old problem's γ.

        A decline can lower the achievable willingness below the carried
        monotone threshold, which would blank every elite set and freeze
        the vector — replans must re-earn γ against the new ceiling.
        """
        import math

        from repro.core.willingness import evaluator_for

        problem = WASOProblem(graph=small_facebook, k=5)
        solver = CBASND(budget=60, m=6, stages=3)
        solver.solve(problem, rng=7)
        state = solver.last_warm_state
        assert any(
            vector.gamma > -math.inf for vector in state.vectors.values()
        )
        solver.warm_state = state
        evaluator = evaluator_for(problem.graph, solver.engine)
        solver._prepare(problem, state.starts, evaluator)
        for vector in solver._vectors:
            assert vector.gamma == -math.inf

    def test_planner_leaves_solver_cold_for_standalone_use(
        self, small_facebook
    ):
        """plan() must not leave its warm state installed on the solver."""
        problem = WASOProblem(graph=small_facebook, k=5)
        solver = CBASND(budget=60, m=6, stages=3)
        cold = solver.solve(problem, rng=9)
        planner = OnlinePlanner(problem, solver=solver, rng=7)
        solution = planner.plan()
        planner.record_decline(next(iter(solution.members)))
        assert solver.warm_state is None
        # A later standalone solve is a genuine cold solve again.
        again = solver.solve(problem, rng=9)
        assert again.members == cold.members
        assert "warm_start" not in again.stats.extra

    def test_stale_graph_warm_vectors_dropped_on_both_engines(
        self, small_facebook
    ):
        """Vectors earned on another graph are never reused (either engine).

        The compiled engine would rebuild anyway (fresh freeze, new
        index_of); the reference engine must drop them in lockstep or
        seeded runs would diverge across engines.
        """
        from repro.graph.generators import facebook_like

        other_graph = facebook_like(200, seed=5)
        other_problem = WASOProblem(graph=other_graph, k=5)
        problem = WASOProblem(graph=small_facebook, k=5)
        results = {}
        for engine in ("reference", "compiled"):
            solver = CBASND(budget=60, m=6, stages=3, engine=engine)
            solver.solve(other_problem, rng=3)
            stale = solver.last_warm_state
            stale_ids = {id(v) for v in stale.vectors.values()}
            solver.warm_state = stale
            warm = solver.solve(problem, rng=9)
            results[engine] = (warm.members, warm.willingness)
            # The stale vectors were discarded: the new solve exported
            # freshly-built vector objects, none reused from the stale
            # state.
            exported = solver.last_warm_state.vectors.values()
            assert all(id(v) not in stale_ids for v in exported)
            assert warm.solution.is_feasible(problem)
        assert results["reference"] == results["compiled"]

    def test_warm_replan_falls_back_when_all_starts_pruned(self):
        """Warm starts stranded in a sub-k region fall back to cold.

        Barbell graph: small component A joined to a big component B by a
        bridge node.  A warm state whose starts all sit in A, replanned
        after the bridge is declined, must re-rank cold (B still holds a
        feasible group) instead of raising BudgetExhaustedError.
        """
        from repro.algorithms.cbas import CBAS
        from repro.graph.social_graph import SocialGraph

        graph = SocialGraph()
        for node in range(16):
            graph.add_node(node, interest=1.0)
        for u in range(5):  # component A: clique over 0..4
            for v in range(u + 1, 5):
                graph.add_edge(u, v, 1.0)
        for u in range(6, 16):  # component B: clique over 6..15
            for v in range(u + 1, 16):
                graph.add_edge(u, v, 1.0)
        graph.add_edge(4, 5, 1.0)  # bridge node 5
        graph.add_edge(5, 6, 1.0)
        problem = WASOProblem(graph=graph, k=6)
        solver = CBAS(budget=40, m=4, stages=2)
        solver.solve(problem, rng=1)
        # Pretend the previous solution lived in A: starts 0..3 plus the
        # bridge; declining the bridge strands them all below k.
        solver.warm_state = solver.last_warm_state
        solver.warm_state.starts = [0, 1, 2, 3, 5]
        declined = problem.without_nodes({5})
        result = solver.solve(declined, rng=2)
        assert result.solution.is_feasible(declined)
        assert result.members <= set(range(6, 16))
        assert "warm_start" not in result.stats.extra

    def test_warm_start_disabled_runs_cold(self, small_facebook):
        problem = WASOProblem(graph=small_facebook, k=5)
        planner = OnlinePlanner(
            problem,
            solver=CBASND(budget=60, m=6, stages=3),
            rng=7,
            warm_start=False,
        )
        solution = planner.plan()
        victim = next(iter(solution.members))
        refreshed = planner.record_decline(victim)
        assert "warm_start" not in planner.last_result.stats.extra
        assert victim not in refreshed.members

    @pytest.mark.parametrize("decline_count", [1, 2])
    def test_warm_replans_engine_equivalent(
        self, small_facebook, decline_count
    ):
        """Warm-started replans stay bit-identical across engines."""
        outcomes = {}
        for engine in ("reference", "compiled"):
            problem = WASOProblem(graph=small_facebook, k=5)
            planner = OnlinePlanner(
                problem,
                solver=CBASND(budget=60, m=6, stages=3, engine=engine),
                rng=7,
            )
            solution = planner.plan()
            groups = [frozenset(solution.members)]
            victims = sorted(solution.members, key=repr)[:decline_count]
            for victim in victims:
                groups.append(
                    frozenset(planner.record_decline(victim).members)
                )
            outcomes[engine] = (
                groups,
                planner.replan_samples,
                planner.last_result.willingness,
            )
        assert outcomes["reference"] == outcomes["compiled"]

    def test_base_required_nodes_preserved(self, small_facebook):
        anchor = next(iter(small_facebook.nodes()))
        problem = WASOProblem(
            graph=small_facebook, k=5, required=frozenset({anchor})
        )
        planner = OnlinePlanner(
            problem, solver=CBASND(budget=60, m=6, stages=3), rng=3
        )
        solution = planner.plan()
        assert anchor in solution.members
        victim = next(iter(solution.members - {anchor}))
        refreshed = planner.record_decline(victim)
        assert anchor in refreshed.members


class TestPrunedDeclines:
    """``prune_declined=True``: declines really shrink the graph, as an
    in-place delta patch (same frozen index, bumped generation)."""

    def _fresh_graph(self, seed=17, n=60):
        # Fresh per-test graph: pruning mutates it, so the session-scoped
        # fixtures must never be used here.
        from repro.graph.generators import random_social_graph

        return random_social_graph(n, average_degree=4.0, seed=seed)

    def test_decline_prunes_incident_edges_in_place(self):
        from repro.graph.compiled import CompiledGraph

        graph = self._fresh_graph()
        problem = WASOProblem(graph=graph, k=5)
        planner = OnlinePlanner(
            problem,
            solver=CBASND(budget=60, m=6, stages=3),
            rng=7,
            prune_declined=True,
        )
        compiled = graph.compiled()
        token = compiled.payload_token
        solution = planner.plan()
        victim = next(iter(solution.members))
        assert graph.degree(victim) > 0
        refreshed = planner.record_decline(victim)
        assert victim not in refreshed.members
        assert graph.degree(victim) == 0  # edges gone, not just forbidden
        # Patched in place: same index object, same token, new generation
        # — and bit-identical to a fresh refreeze of the pruned graph.
        assert graph.compiled() is compiled
        assert compiled.payload_token == token
        assert compiled.generation >= 1
        fresh = CompiledGraph.from_graph(graph)
        assert list(compiled.offsets) == list(fresh.offsets)
        assert list(compiled.targets) == list(fresh.targets)
        assert list(compiled.potential) == list(fresh.potential)
        planner.close()

    def test_pruned_replan_keeps_warm_state(self):
        graph = self._fresh_graph(seed=23)
        problem = WASOProblem(graph=graph, k=5)
        planner = OnlinePlanner(
            problem,
            solver=CBASND(budget=60, m=6, stages=3),
            rng=9,
            prune_declined=True,
        )
        solution = planner.plan()
        victim = next(iter(solution.members))
        planner.record_decline(victim)
        # The re-stamped warm state survived the mutation: the replan
        # ran warm (CE vectors / start ranking reused), not cold.
        assert planner.last_result.stats.extra.get("warm_start") is True
        assert planner.replan_count == 1
        planner.close()

    def test_warm_declining_replan_ships_patch_not_install(self):
        """The ISSUE's headline guarantee: a warm resident pool serves a
        declining replan with a sparse ``graph_patch`` — zero graph
        re-installs, patch bytes on the wire."""
        from repro.runtime import ExecutionContext

        graph = self._fresh_graph(seed=29, n=80)
        problem = WASOProblem(graph=graph, k=5)
        with ExecutionContext(workers=2, mode="stage") as context:
            with OnlinePlanner(
                problem,
                solver=context.make_solver(
                    "cbas-nd", budget=100, m=6, stages=2
                ),
                rng=3,
                prune_declined=True,
                context=context,
            ) as planner:
                solution = planner.plan()
                first_extra = planner.last_result.stats.extra
                assert first_extra["graph_shipped"]
                installs_before = context.stage_pool().installs
                victim = next(iter(sorted(solution.members, key=repr)))
                planner.record_decline(victim)
                extra = planner.last_result.stats.extra
                assert context.stage_pool().installs == installs_before
                assert extra.get("graph_installs", 0) == 0
                assert not extra["graph_shipped"]
                assert extra["graph_patch_bytes"] > 0
