"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "chaos: deterministic fault-injection differential tests "
        "(tests/test_faults.py) — worker kills, reply drops/delays, "
        "deadline expiry — asserting bit-identical recovery; part of "
        "tier 1 and re-runnable standalone via "
        "`PYTHONPATH=src python -m pytest tests/test_faults.py -m chaos`",
    )

from repro.core.problem import WASOProblem
from repro.graph.generators import (
    dblp_like,
    facebook_like,
    figure1_graph,
    figure3_graph,
    random_social_graph,
)
from repro.graph.social_graph import SocialGraph


@pytest.fixture
def rng() -> random.Random:
    return random.Random(1234)


@pytest.fixture
def triangle_graph() -> SocialGraph:
    """Three mutually connected nodes with distinct scores."""
    graph = SocialGraph()
    graph.add_node("a", interest=1.0)
    graph.add_node("b", interest=2.0)
    graph.add_node("c", interest=3.0)
    graph.add_edge("a", "b", 0.5)
    graph.add_edge("b", "c", 0.25)
    graph.add_edge("a", "c", 0.75)
    return graph


@pytest.fixture
def path_graph() -> SocialGraph:
    """Five nodes in a path: 0 - 1 - 2 - 3 - 4 with unit scores."""
    graph = SocialGraph()
    for node in range(5):
        graph.add_node(node, interest=1.0)
    for node in range(4):
        graph.add_edge(node, node + 1, 1.0)
    return graph


@pytest.fixture
def two_components_graph() -> SocialGraph:
    """Two triangles with no bridge; second triangle is better."""
    graph = SocialGraph()
    for node, interest in [(0, 1.0), (1, 1.0), (2, 1.0), (3, 5.0), (4, 5.0), (5, 5.0)]:
        graph.add_node(node, interest=interest)
    for u, v in [(0, 1), (1, 2), (0, 2)]:
        graph.add_edge(u, v, 0.1)
    for u, v in [(3, 4), (4, 5), (3, 5)]:
        graph.add_edge(u, v, 2.0)
    return graph


@pytest.fixture
def fig1() -> SocialGraph:
    return figure1_graph()


@pytest.fixture
def fig3() -> SocialGraph:
    return figure3_graph()


@pytest.fixture(scope="session")
def small_facebook() -> SocialGraph:
    """Session-cached Facebook-regime graph for solver tests."""
    return facebook_like(200, seed=99)


@pytest.fixture(scope="session")
def small_dblp() -> SocialGraph:
    return dblp_like(200, seed=99)


@pytest.fixture(scope="session")
def tiny_random() -> SocialGraph:
    """A small connected random graph for exact-solver comparisons."""
    graph = random_social_graph(18, average_degree=4.0, seed=5)
    _connect(graph)
    return graph


def _connect(graph: SocialGraph) -> None:
    """Chain components together so connected-WASO instances exist."""
    components = graph.connected_components()
    anchor = next(iter(components[0]))
    for component in components[1:]:
        graph.add_edge(anchor, next(iter(component)), 0.05)


@pytest.fixture
def connectify():
    """Expose the component-chaining helper to tests."""
    return _connect


@pytest.fixture
def index_cache(tmp_path):
    """Scratch cache directory for saved frozen-index tests.

    Everything the out-of-core storage tests write (saved indexes,
    ingested edge lists) lands here and is torn down with ``tmp_path``
    — nothing may save into a shared session graph, whose adopted
    ``disk_home`` would outlive the directory.
    """
    path = tmp_path / "graph-cache"
    path.mkdir()
    return path
