"""Tests for stage-sharded parallel CE execution (repro.parallel.stage_pool).

The load-bearing property is *shard-merge correctness*: a stage-sharded
run with W shards and fixed per-shard seeds must produce the identical
per-stage elite sets and refit vectors as a serial run fed the same
concatenated sample stream.  The equivalence test below replays the
executor's trace — per stage, per funded start: the shard budgets and
RNG seeds — through a single in-process sampler and compares elite sets
and the final probability arrays bit-for-bit.
"""

import math
import random

import pytest

from repro.algorithms.cbas import CBAS
from repro.algorithms.cbas_nd import CBASND
from repro.algorithms.sampling import (
    ExpansionSampler,
    Sample,
    seed_for_start,
    summarize_shard,
)
from repro.algorithms.stage_exec import MAX_CONSECUTIVE_FAILURES
from repro.ce.probability import SelectionProbabilities, elite_threshold
from repro.core.problem import WASOProblem
from repro.core.willingness import evaluator_for
from repro.online.replanning import OnlinePlanner
from repro.parallel import ShardedStageExecutor, StagePool


@pytest.fixture(scope="module")
def stage_pool():
    """One warm two-worker pool shared by the multiprocess tests."""
    with StagePool(2) as pool:
        yield pool


def _sample(indices, willingness):
    return Sample(
        members=frozenset(f"n{i}" for i in indices),
        willingness=willingness,
        indices=tuple(indices),
    )


class TestSummarizeShard:
    def test_counts_and_moments(self):
        batch = [_sample((0, 1), 5.0), None, _sample((1, 2), 3.0), None, None]
        summary = summarize_shard(batch, keep_rank=1)
        assert summary.attempts == 5
        assert summary.successes == 2
        assert summary.failures == 3
        assert summary.trailing_failures == 2
        assert summary.min_w == 3.0
        assert summary.max_w == 5.0
        assert summary.mean == pytest.approx(4.0)
        # keep_rank=1 retains only the best sample.
        assert summary.kept == ((5.0, (0, 1)),)

    def test_kept_includes_threshold_ties(self):
        batch = [
            _sample((0,), 5.0),
            _sample((1,), 4.0),
            _sample((2,), 4.0),
            _sample((3,), 1.0),
        ]
        summary = summarize_shard(batch, keep_rank=2)
        # The rank-2 value is 4.0; both samples tied at it are kept.
        assert summary.kept == ((5.0, (0,)), (4.0, (1,)), (4.0, (2,)))

    def test_hit_cap_uses_carry(self):
        batch = [None, None]
        summary = summarize_shard(
            batch, keep_rank=1, max_failures=5, carry_failures=3
        )
        assert summary.hit_cap
        assert summary.successes == 0
        no_carry = summarize_shard(batch, keep_rank=1, max_failures=5)
        assert not no_carry.hit_cap

    def test_trailing_reset_by_success(self):
        batch = [None, None, _sample((0,), 2.0)]
        summary = summarize_shard(
            batch, keep_rank=1, max_failures=5, carry_failures=4
        )
        assert summary.trailing_failures == 0
        assert not summary.hit_cap


class TestUpdateFromCounts:
    """The pre-aggregated refit must equal the per-sample refit bitwise."""

    def _vectors(self):
        candidates = list(range(8))
        index_of = {node: node for node in candidates}
        build = lambda: SelectionProbabilities(  # noqa: E731
            candidates, 3, index_of=index_of, size=8
        )
        return build(), build()

    def test_matches_update(self):
        via_samples, via_counts = self._vectors()
        samples = [
            Sample(frozenset({0, 1, 2}), 9.0, indices=(0, 1, 2)),
            Sample(frozenset({1, 2, 3}), 8.0, indices=(1, 2, 3)),
            Sample(frozenset({4, 5, 6}), 1.0, indices=(4, 5, 6)),
        ]
        via_samples.update(samples, rho=0.5, smoothing=0.7)

        # rho=0.5 over 3 samples -> rank 2 -> gamma 8.0 -> two elites.
        stage_gamma = elite_threshold([s.willingness for s in samples], 0.5)
        via_counts.observe_stage_gamma(stage_gamma)
        counts = {0: 1, 1: 2, 2: 2, 3: 1}
        patch, movement = via_counts.update_from_counts(counts, 2, 0.7)
        assert movement == 0.0
        assert via_counts.snapshot() == via_samples.snapshot()
        assert via_counts.gamma == via_samples.gamma
        kind, keep, slot_values = patch
        assert kind == "round" and keep == pytest.approx(1.0 - 0.7)
        assert [slot for slot, _ in slot_values] == [0, 1, 2, 3]

    def test_patch_replay_keeps_mirror_identical(self):
        parent, mirror = self._vectors()
        rng = random.Random(3)
        for _ in range(4):
            members = tuple(sorted(rng.sample(range(8), 3)))
            counts = {slot: 1 for slot in members}
            parent.observe_stage_gamma(rng.random())
            patch, _ = parent.update_from_counts(counts, 1, 0.9)
            mirror.apply_round(patch[1], patch[2])
        assert mirror.snapshot() == parent.snapshot()

    def test_full_patch_resync(self):
        parent, mirror = self._vectors()
        patch, _ = parent.update_from_counts({0: 1, 1: 1, 2: 1}, 1, 0.5)
        # Mirror missed the round: a full restore resynchronizes it.
        mirror.restore(parent.snapshot())
        assert mirror.snapshot() == parent.snapshot()

    def test_validation(self):
        vector, _ = self._vectors()
        with pytest.raises(ValueError):
            vector.update_from_counts({}, 1, 0.5)
        with pytest.raises(ValueError):
            vector.update_from_counts({0: 1}, 0, 0.5)
        with pytest.raises(ValueError):
            vector.update_from_counts({0: 1}, 1, 1.5)


class TestShardMergeEquivalence:
    """Sharded stage merge == serial run over the concatenated stream."""

    @pytest.mark.parametrize("workers", [2, 3])
    def test_elites_and_refit_vectors_match_serial_reconstruction(
        self, small_facebook, workers
    ):
        problem = WASOProblem(graph=small_facebook, k=5)
        rho, smoothing = 0.3, 0.9
        with StagePool(workers) as pool:
            executor = ShardedStageExecutor(pool=pool, trace=True)
            solver = CBASND(
                budget=150,
                m=6,
                stages=4,
                rho=rho,
                smoothing=smoothing,
                executor=executor,
            )
            result = solver.solve(problem, rng=11)
        starts = solver.last_warm_state.starts

        evaluator = evaluator_for(problem.graph, "compiled")
        sampler = ExpansionSampler(problem, evaluator)
        compiled = evaluator.compiled
        vectors: dict = {}

        def vector_for(index):
            if index not in vectors:
                vectors[index] = SelectionProbabilities(
                    problem.candidates(),
                    problem.k,
                    index_of=compiled.index_of,
                    size=compiled.number_of_nodes,
                )
            return vectors[index]

        checked_stages = 0
        for stage in executor.trace[0]["stages"]:
            for record in stage:
                index = record["start"]
                vector = vector_for(index)
                # Serial run fed the same concatenated sample stream:
                # draw each shard's budget with its seed, in shard order,
                # through one in-process sampler.
                samples = []
                for position, (count, seed_int) in enumerate(
                    record["shards"]
                ):
                    shard_rng = random.Random(seed_int)
                    carry = record["carry"] if position == 0 else 0
                    batch = sampler.draw_batch(
                        seed_for_start(problem, starts[index]),
                        shard_rng,
                        count,
                        weight_array=vector.array,
                        failures=carry,
                        max_failures=MAX_CONSECUTIVE_FAILURES,
                    )
                    samples.extend(s for s in batch if s is not None)
                assert len(samples) == record["successes"]
                if not samples:
                    continue
                # Identical elite set: the serial stream's monotone-γ
                # elites equal what the merge derived from shard `kept`s.
                stage_gamma = elite_threshold(
                    [s.willingness for s in samples], rho
                )
                gamma = max(vector.gamma, stage_gamma)
                serial_elites = sorted(
                    (s.willingness, s.indices)
                    for s in samples
                    if s.willingness >= gamma
                )
                merged_elites = sorted(
                    (w, ids) for w, ids in record["kept"] if w >= gamma
                )
                assert serial_elites == merged_elites
                vector.update(
                    samples, rho=rho, smoothing=smoothing,
                    compute_movement=False,
                )
                checked_stages += 1
        assert checked_stages > 0

        # Identical refit vectors, bit for bit.
        for index, vector in vectors.items():
            assert vector.snapshot() == solver._vectors[index].snapshot()
            assert vector.gamma == solver._vectors[index].gamma
        # And the solution itself is drawn from that same stream.
        assert result.solution.is_feasible(problem)

    def test_keep_rank_covers_merged_elite_rank(self):
        # ⌈ρ·share⌉ per shard is an upper bound for ⌈ρ·successes⌉ of the
        # merged stream — the inequality the retention protocol rests on.
        solver = CBASND(budget=10, rho=0.3)
        for share in (1, 2, 7, 33):
            assert solver._shard_keep_rank(share) >= max(
                1, math.ceil(0.3 * share)
            )


class TestShardedSolvers:
    def test_deterministic_and_feasible(self, small_facebook, stage_pool):
        problem = WASOProblem(graph=small_facebook, k=5)
        executor = ShardedStageExecutor(pool=stage_pool)
        solver = CBASND(budget=120, m=6, stages=3, executor=executor)
        first = solver.solve(problem, rng=4)
        second = solver.solve(problem, rng=4)
        assert first.solution.is_feasible(problem)
        assert first.willingness == second.willingness
        assert first.members == second.members
        assert first.stats.extra["stage_workers"] == stage_pool.workers

    def test_shard_protocol_overhead_recorded(
        self, small_facebook, stage_pool
    ):
        """`extra` carries the overhead-curve inputs: RPCs + patch bytes."""
        problem = WASOProblem(graph=small_facebook, k=5)
        executor = ShardedStageExecutor(pool=stage_pool)
        solver = CBASND(budget=120, m=6, stages=3, executor=executor)
        extra = solver.solve(problem, rng=4).stats.extra
        stages = 3
        workers = stage_pool.workers
        # One request/reply round per worker per stage, plus the solve
        # broadcast (and the graph install when it was not yet resident).
        assert extra["shard_rpcs"] >= (stages + 1) * workers
        assert extra["shard_rpcs"] <= (stages + 2) * workers
        # One entry per executed stage; stage 0 ships no CE patches (the
        # cold vectors are rebuilt worker-side), later stages do.
        patch_bytes = extra["shard_patch_bytes"]
        assert len(patch_bytes) == stages
        assert patch_bytes[0] == 0
        assert all(isinstance(b, int) and b >= 0 for b in patch_bytes)
        assert sum(patch_bytes[1:]) > 0

    def test_uniform_cbas_ships_no_patches(self, small_facebook, stage_pool):
        problem = WASOProblem(graph=small_facebook, k=5)
        executor = ShardedStageExecutor(pool=stage_pool)
        solver = CBAS(budget=90, m=6, stages=3, executor=executor)
        extra = solver.solve(problem, rng=9).stats.extra
        # Uniform CBAS has no CE vectors to sync: every stage's patch
        # payload is empty.
        assert extra["shard_patch_bytes"] == [0, 0, 0]
        assert extra["shard_rpcs"] >= 3 * stage_pool.workers

    def test_full_budget_drawn(self, small_facebook, stage_pool):
        problem = WASOProblem(graph=small_facebook, k=5)
        executor = ShardedStageExecutor(pool=stage_pool)
        budget, stages = 120, 3
        solver = CBASND(budget=budget, m=6, stages=stages, executor=executor)
        result = solver.solve(problem, rng=4)
        # Connected graph, no sub-k components: every attempt succeeds,
        # so the sharded run consumes the same budget as the serial loop.
        assert result.stats.samples_drawn == (budget // stages) * stages
        assert result.stats.failed_samples == 0

    def test_uniform_cbas_sharded(self, small_facebook, stage_pool):
        problem = WASOProblem(graph=small_facebook, k=5)
        executor = ShardedStageExecutor(pool=stage_pool)
        solver = CBAS(budget=90, m=6, stages=3, executor=executor)
        result = solver.solve(problem, rng=9)
        assert result.solution.is_feasible(problem)
        assert result.stats.samples_drawn == 90

    def test_reference_engine_rejected(self, small_facebook, stage_pool):
        problem = WASOProblem(graph=small_facebook, k=5)
        executor = ShardedStageExecutor(pool=stage_pool)
        solver = CBASND(
            budget=60, m=4, stages=2, engine="reference", executor=executor
        )
        with pytest.raises(ValueError, match="compiled"):
            solver.solve(problem, rng=1)

    def test_quality_comparable_to_serial(self, small_facebook, stage_pool):
        problem = WASOProblem(graph=small_facebook, k=6)
        serial = CBASND(budget=120, m=6, stages=4).solve(problem, rng=2)
        sharded = CBASND(
            budget=120,
            m=6,
            stages=4,
            executor=ShardedStageExecutor(pool=stage_pool),
        ).solve(problem, rng=2)
        # Same statistical computation (full-elite refit every stage):
        # quality must stay in the serial ballpark.
        assert sharded.willingness >= serial.willingness * 0.5


class TestResidency:
    def test_graph_resident_across_solves(self, small_facebook, stage_pool):
        problem = WASOProblem(graph=small_facebook, k=5)
        installs_before = stage_pool.installs
        executor = ShardedStageExecutor(pool=stage_pool)
        solver = CBASND(budget=60, m=4, stages=2, executor=executor)
        first = solver.solve(problem, rng=1)
        second = solver.solve(problem, rng=2)
        assert stage_pool.installs <= installs_before + 1
        assert second.stats.extra["graph_shipped"] is False
        assert first.solution.is_feasible(problem)

    def test_mutation_invalidates_resident_graph(self, connectify):
        from repro.graph.generators import facebook_like

        graph = facebook_like(120, seed=5)
        connectify(graph)
        problem = WASOProblem(graph=graph, k=4)
        with StagePool(2) as pool:
            executor = ShardedStageExecutor(pool=pool)
            solver = CBASND(budget=60, m=4, stages=2, executor=executor)
            solver.solve(problem, rng=1)
            assert pool.installs == 1
            token_before = pool.resident_token
            # Mutating the graph produces a fresh freeze with a fresh
            # payload token: the resident arrays must be re-shipped.
            nodes = graph.node_list()
            graph.set_interest(nodes[0], 3.21)
            result = solver.solve(problem, rng=1)
            assert pool.installs == 2
            assert pool.resident_token != token_before
            assert result.stats.extra["graph_shipped"] is True

    def test_bounded_cache_evicts_and_reships(self, small_facebook):
        """A capacity-1 stage pool alternating two graphs re-ships the
        evicted arrays — and keeps solving correctly (shared residency
        protocol, satellite of the solve-pool tentpole)."""
        from repro.graph.generators import facebook_like

        problem_a = WASOProblem(graph=small_facebook, k=5)
        problem_b = WASOProblem(graph=facebook_like(120, seed=8), k=4)
        with StagePool(2, resident_graphs=1) as pool:
            executor = ShardedStageExecutor(pool=pool)
            solver_a = CBASND(budget=60, m=4, stages=2, executor=executor)
            solver_b = CBASND(budget=60, m=4, stages=2, executor=executor)
            solver_a.solve(problem_a, rng=1)
            assert pool.installs == 1
            solver_b.solve(problem_b, rng=2)  # evicts A
            assert pool.installs == 2
            result = solver_a.solve(problem_a, rng=3)  # re-ship
            assert pool.installs == 3
            assert result.stats.extra["graph_shipped"] is True
            assert result.stats.extra["batch_payload_bytes"] > 0
            again = solver_a.solve(problem_a, rng=4)  # warm
            assert pool.installs == 3
            assert again.stats.extra["graph_shipped"] is False
            assert again.stats.extra["batch_payload_bytes"] == 0
            assert pool.resident_token == problem_a.payload_token()

    def test_problem_spec_roundtrip(self, small_facebook):
        from repro.core.problem import problem_from_payload_spec

        nodes = small_facebook.node_list()
        problem = WASOProblem(
            graph=small_facebook,
            k=5,
            required=frozenset({nodes[0]}),
            forbidden=frozenset({nodes[1]}),
        )
        spec = problem.payload_spec()
        rebuilt = problem_from_payload_spec(problem.compiled().detach(), spec)
        assert rebuilt.k == problem.k
        assert rebuilt.required == problem.required
        assert rebuilt.forbidden == problem.forbidden
        assert rebuilt.candidates() == problem.candidates()
        with pytest.raises(ValueError):
            problem_from_payload_spec(
                problem.compiled().detach(), {**spec, "token": "cg-0-999999"}
            )

    def test_payload_token_survives_detach_and_pickle(self, small_facebook):
        import pickle

        compiled = small_facebook.compiled()
        token = compiled.payload_token
        assert compiled.detach().payload_token == token
        assert pickle.loads(pickle.dumps(compiled.detach())).payload_token == token


class TestOnlineReplanningResident:
    def test_replans_reuse_resident_pool(self, small_facebook):
        problem = WASOProblem(graph=small_facebook, k=5)
        with StagePool(2) as pool:
            executor = ShardedStageExecutor(pool=pool)
            solver = CBASND(budget=80, m=5, stages=2, executor=executor)
            with OnlinePlanner(problem, solver=solver, rng=6) as planner:
                group = planner.plan()
                assert pool.installs == 1
                assert planner.last_result.stats.extra["graph_shipped"]
                # Two decline rounds: forbidden grows, graph unchanged —
                # replans ship only the O(1) problem spec.
                for _ in range(2):
                    victim = next(
                        iter(sorted(group.members - planner.accepted))
                    )
                    group = planner.record_decline(victim)
                assert planner.replan_count == 2
                assert pool.installs == 1
                assert (
                    planner.last_result.stats.extra["graph_shipped"] is False
                )
                assert group.is_feasible(planner._current_problem())

    def test_close_tears_down_owned_pool(self, small_facebook):
        problem = WASOProblem(graph=small_facebook, k=5)
        executor = ShardedStageExecutor(workers=2)
        solver = CBASND(budget=60, m=4, stages=2, executor=executor)
        planner = OnlinePlanner(problem, solver=solver, rng=6)
        planner.plan()
        planner.close()
        with pytest.raises(RuntimeError):
            executor.pool.ensure_resident(problem)
