"""Differential tests for in-place graph deltas (``apply_deltas``).

The streaming-mutation contract: a compiled index patched through
:meth:`~repro.graph.compiled.CompiledGraph.apply_deltas` must be
**bit-identical** — every flat array, every cached view, every derived
component label — to a fresh freeze of the mutated source graph, and
seeded solver runs over the patched index must reproduce the refrozen
index's results exactly on both engines, serial and stage-sharded.
These tests hold that line on randomized delta sequences, through the
generation/patch-log machinery, the on-disk format, the residency wire
protocol, and a worker killed mid-patch-stream.
"""

import multiprocessing
import pickle
import random
import time

import pytest

from repro.algorithms.cbas_nd import CBASND
from repro.core.problem import WASOProblem, problem_from_payload_spec
from repro.exceptions import (
    DuplicateNodeError,
    EdgeNotFoundError,
    GraphError,
    NodeNotFoundError,
)
from repro.graph.compiled import CompiledGraph
from repro.graph.generators import random_social_graph
from repro.graph.social_graph import SocialGraph
from repro.parallel.faults import NEXT_RPC, FaultPlan
from repro.parallel.residency import (
    ResidencyLedger,
    ResidentGraphStore,
    apply_graph_patch,
    plan_graph_message,
)
from repro.parallel.stage_pool import ShardedStageExecutor, StagePool


@pytest.fixture
def no_orphans():
    """Assert the test leaves no worker processes behind."""
    before = set(multiprocessing.active_children())
    yield
    deadline = time.monotonic() + 5.0
    while True:
        leaked = set(multiprocessing.active_children()) - before
        if not leaked:
            return
        if time.monotonic() >= deadline:
            raise AssertionError(f"orphan worker processes: {leaked}")
        time.sleep(0.02)


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------
def _general_graph(n: int, seed: int) -> SocialGraph:
    """Random graph with asymmetric tightness and mixed λ weights."""
    graph = random_social_graph(n, average_degree=3.5, seed=seed)
    rng = random.Random(seed + 1)
    for u, v in graph.edges():
        graph.set_tightness(u, v, rng.uniform(-1.0, 1.0))
        graph.set_tightness(v, u, rng.uniform(-1.0, 1.0))
    for node in graph.nodes():
        graph.set_lam(node, rng.choice([None, rng.random()]))
    return graph


def _random_batch(graph: SocialGraph, rng: random.Random, counter: list):
    """One randomized delta batch, valid against ``graph``'s current state.

    Tracks intra-batch edge/node changes so a batch never removes the
    same edge twice or re-adds an existing node.
    """
    nodes = list(graph.nodes())
    edges = {frozenset(edge) for edge in graph.edges()}
    batch = []
    for _ in range(rng.randint(1, 5)):
        kind = rng.random()
        if kind < 0.15:
            counter[0] += 1
            name = f"new{counter[0]}"
            lam = rng.choice([None, rng.random()])
            batch.append(("add_node", name, rng.uniform(0.1, 2.0), lam))
            nodes.append(name)
        elif kind < 0.45 and len(nodes) >= 2:
            u, v = rng.sample(nodes, 2)
            if frozenset((u, v)) in edges:
                continue
            edges.add(frozenset((u, v)))
            if rng.random() < 0.5:
                batch.append(("add_edge", u, v, rng.uniform(-1.0, 1.0)))
            else:
                batch.append(
                    (
                        "add_edge", u, v,
                        rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0),
                    )
                )
        elif kind < 0.75 and edges:
            u, v = rng.choice(
                sorted((tuple(sorted(e, key=repr)) for e in edges), key=repr)
            )
            if rng.random() < 0.5:
                u, v = v, u
            batch.append(("set_tightness", u, v, rng.uniform(-1.0, 1.0)))
        elif edges:
            u, v = rng.choice(
                sorted((tuple(sorted(e, key=repr)) for e in edges), key=repr)
            )
            edges.discard(frozenset((u, v)))
            batch.append(("remove_edge", u, v))
    return batch


def _assert_bit_identical(patched: CompiledGraph, fresh: CompiledGraph):
    """Every array and derived view of ``patched`` equals ``fresh``'s."""
    assert list(patched.nodes) == list(fresh.nodes)
    assert dict(patched.index_of) == dict(fresh.index_of)
    assert list(patched.offsets) == list(fresh.offsets)
    assert list(patched.targets) == list(fresh.targets)
    assert list(patched.out_w) == list(fresh.out_w)
    assert list(patched.pair_w) == list(fresh.pair_w)
    assert list(patched.weighted_interest) == list(fresh.weighted_interest)
    assert list(patched.tightness_weight) == list(fresh.tightness_weight)
    assert list(patched.potential) == list(fresh.potential)
    assert (
        patched.component_size_by_index() == fresh.component_size_by_index()
    )
    assert (
        patched.component_label_by_index() == fresh.component_label_by_index()
    )
    assert [list(row) for row in patched.row_targets] == [
        list(row) for row in fresh.row_targets
    ]
    assert patched.row_edges == fresh.row_edges
    assert patched.row_id_edges == fresh.row_id_edges


# ----------------------------------------------------------------------
# Core: randomized patched index == fresh refreeze, bit for bit
# ----------------------------------------------------------------------
class TestRandomizedDeltasBitIdentical:
    @pytest.mark.parametrize("seed", range(8))
    def test_patched_equals_refreeze(self, seed):
        graph = _general_graph(50, seed)
        compiled = graph.compiled()
        # Warm the lazy views so the patcher must keep them coherent.
        compiled.row_edges
        compiled.row_targets
        compiled.component_size_by_index()
        rng = random.Random(seed * 31 + 7)
        counter = [0]
        for round_no in range(6):
            batch = _random_batch(graph, rng, counter)
            if not batch:
                continue
            before = compiled.generation
            compiled.apply_deltas(batch)
            assert compiled.generation == before + 1
            _assert_bit_identical(compiled, CompiledGraph.from_graph(graph))

    def test_patched_index_stays_adopted_by_source(self):
        graph = _general_graph(30, 3)
        compiled = graph.compiled()
        token = compiled.payload_token
        compiled.apply_deltas([("add_node", "x", 1.25, 0.5)])
        # Same object, same token, bumped generation: the graph cache
        # re-adopts the patched index instead of minting a new freeze.
        assert graph.compiled() is compiled
        assert compiled.payload_token == token
        assert compiled.generation == 1

    def test_component_tracking_through_merges_and_splits(self):
        graph = SocialGraph()
        for name in "abcdef":
            graph.add_node(name, interest=1.0)
        graph.add_edge("a", "b", 0.5)
        graph.add_edge("c", "d", 0.5)
        compiled = graph.compiled()
        compiled.component_size_by_index()
        compiled.apply_deltas([("add_edge", "b", "c", 0.25)])
        _assert_bit_identical(compiled, CompiledGraph.from_graph(graph))
        # A removal can split a component: the cache is recomputed, not
        # patched, and must still match the refreeze.
        compiled.apply_deltas([("remove_edge", "b", "c")])
        _assert_bit_identical(compiled, CompiledGraph.from_graph(graph))

    def test_delta_validation_errors(self):
        graph = _general_graph(20, 5)
        compiled = graph.compiled()
        with pytest.raises(NodeNotFoundError):
            compiled.apply_deltas([("set_tightness", "zz", "zz2", 0.5)])
        u, v = next(iter(graph.edges()))
        with pytest.raises(DuplicateNodeError):
            compiled.apply_deltas([("add_node", u, 1.0, None)])
        with pytest.raises(EdgeNotFoundError):
            compiled.apply_deltas([("remove_edge", u, u)])
        with pytest.raises(GraphError):
            compiled.apply_deltas([("add_edge", u, u, 0.5)])
        with pytest.raises(GraphError):
            compiled.apply_deltas([("frobnicate", u)])

    def test_failed_batch_commits_applied_prefix(self):
        graph = _general_graph(20, 6)
        compiled = graph.compiled()
        u, v = next(iter(graph.edges()))
        with pytest.raises(EdgeNotFoundError):
            compiled.apply_deltas(
                [("add_node", "pfx", 1.0, None), ("remove_edge", "pfx", u)]
            )
        # The applied prefix is committed as its own generation, so the
        # arrays and the source dicts never diverge.
        assert compiled.generation == 1
        assert graph.has_node("pfx")
        _assert_bit_identical(compiled, CompiledGraph.from_graph(graph))


# ----------------------------------------------------------------------
# Generation / patch-log semantics
# ----------------------------------------------------------------------
class TestGenerationLog:
    def test_delta_batches_since(self):
        graph = _general_graph(20, 9)
        compiled = graph.compiled()
        compiled.apply_deltas([("add_node", "g1", 1.0, None)])
        compiled.apply_deltas([("add_node", "g2", 1.0, None)])
        assert compiled.delta_batches_since(2) == []
        batches = compiled.delta_batches_since(0)
        assert len(batches) == 2
        replayed = CompiledGraph.from_graph(_general_graph(20, 9))
        for batch in batches:
            replayed.apply_deltas(batch)
        _assert_bit_identical(replayed, compiled)
        assert compiled.delta_batches_since(3) is None  # future gen

    def test_compact_clears_log(self):
        graph = _general_graph(20, 10)
        compiled = graph.compiled()
        compiled.apply_deltas([("add_node", "c1", 1.0, None)])
        compiled.compact()
        assert compiled.delta_batches_since(1) == []
        assert compiled.delta_batches_since(0) is None  # log gone
        _assert_bit_identical(compiled, CompiledGraph.from_graph(graph))

    def test_log_overflow_drops_oldest(self):
        from repro.graph.compiled import _DELTA_LOG_LIMIT

        graph = _general_graph(10, 11)
        compiled = graph.compiled()
        for index in range(_DELTA_LOG_LIMIT + 3):
            compiled.apply_deltas([("add_node", f"o{index}", 1.0, None)])
        assert compiled.delta_batches_since(0) is None
        assert len(compiled.delta_batches_since(3)) == _DELTA_LOG_LIMIT

    def test_pickle_roundtrip_keeps_generation_drops_log(self):
        graph = _general_graph(20, 12)
        compiled = graph.compiled()
        compiled.apply_deltas([("add_node", "p1", 1.0, None)])
        clone = pickle.loads(pickle.dumps(compiled))
        assert clone.generation == 1
        assert clone.delta_batches_since(0) is None  # log does not travel
        assert clone.delta_batches_since(1) == []
        _assert_bit_identical(clone, CompiledGraph.from_graph(graph))

    def test_generation_zero_pickle_bytes_unchanged(self):
        # The conditional "generation" key keeps un-patched pickles
        # byte-identical to pre-delta builds (payload-size baselines).
        graph = _general_graph(20, 13)
        compiled = graph.compiled()
        state = compiled.__getstate__()
        assert "generation" not in state


# ----------------------------------------------------------------------
# Engine equivalence: solves over the patched index match the refreeze
# ----------------------------------------------------------------------
class TestEngineEquivalence:
    def _mutated_pair(self, seed):
        """Two identical graphs: one patched in place, one refrozen."""
        batchES = []
        rng = random.Random(seed + 100)
        counter = [0]
        patched_graph = _general_graph(40, seed)
        compiled = patched_graph.compiled()
        for _ in range(4):
            batch = _random_batch(patched_graph, rng, counter)
            if batch:
                compiled.apply_deltas(batch)
                batchES.append(batch)
        fresh_graph = _general_graph(40, seed)
        for batch in batchES:
            for op in batch:
                if op[0] == "add_node":
                    fresh_graph.add_node(op[1], interest=op[2], lam=op[3])
                elif op[0] == "add_edge":
                    fresh_graph.add_edge(op[1], op[2], *op[3:])
                elif op[0] == "set_tightness":
                    fresh_graph.set_tightness(op[1], op[2], op[3])
                else:
                    fresh_graph.remove_edge(op[1], op[2])
        assert compiled.generation > 0
        _assert_bit_identical(compiled, fresh_graph.compiled())
        return patched_graph, fresh_graph

    @pytest.mark.parametrize("engine", ["compiled", "vector"])
    def test_serial_solves_match(self, engine):
        patched_graph, fresh_graph = self._mutated_pair(21)
        results = []
        for graph in (patched_graph, fresh_graph):
            solver = CBASND(budget=150, m=6, stages=3, engine=engine)
            results.append(
                solver.solve(WASOProblem(graph=graph, k=5), rng=11)
            )
        patched, fresh = results
        assert patched.solution.members == fresh.solution.members
        assert patched.solution.willingness == fresh.solution.willingness
        assert patched.stats.samples_drawn == fresh.stats.samples_drawn
        assert patched.stats.stages == fresh.stats.stages

    @pytest.mark.parametrize("engine", ["compiled", "vector"])
    def test_stage_sharded_solves_match(self, engine, no_orphans):
        patched_graph, fresh_graph = self._mutated_pair(22)
        results = []
        for graph in (patched_graph, fresh_graph):
            with StagePool(2) as pool:
                executor = ShardedStageExecutor(pool=pool)
                solver = CBASND(
                    budget=120, m=6, stages=3, engine=engine,
                    executor=executor,
                )
                results.append(
                    solver.solve(WASOProblem(graph=graph, k=5), rng=13)
                )
        patched, fresh = results
        assert patched.solution.members == fresh.solution.members
        assert patched.solution.willingness == fresh.solution.willingness
        assert patched.stats.samples_drawn == fresh.stats.samples_drawn


# ----------------------------------------------------------------------
# Residency wire protocol
# ----------------------------------------------------------------------
class TestResidencyPatchProtocol:
    def test_plan_graph_message_patches_stale_resident(self):
        graph = _general_graph(30, 31)
        compiled = graph.compiled()
        token = compiled.payload_token
        ledger = ResidencyLedger(4)
        ship, evictions = ledger.plan(token)
        assert ship
        ledger.record_install(token, generation=0)
        compiled.apply_deltas([("add_node", "w1", 1.0, None)])
        ship, evictions = ledger.plan(token)
        assert not ship  # token still resident...
        message, kind = plan_graph_message(
            ledger, token, compiled, ship, evictions, compiled.detach
        )
        assert kind == "patch"  # ...but one generation behind
        assert message[0] == "graph_patch"
        assert message[2] == 1
        assert ledger.resident_generation(token) == 1
        # Same generation now: nothing to send at all.
        message, kind = plan_graph_message(
            ledger, token, compiled, False, (), compiled.detach
        )
        assert message is None

    def test_unservable_gap_demotes_to_full_install(self):
        graph = _general_graph(30, 32)
        compiled = graph.compiled()
        token = compiled.payload_token
        ledger = ResidencyLedger(4)
        ledger.plan(token)
        ledger.record_install(token, generation=0)
        compiled.apply_deltas([("add_node", "w2", 1.0, None)])
        compiled.compact()  # log cleared: gen 0 → 1 is unservable
        installs_before = ledger.installs
        message, kind = plan_graph_message(
            ledger, token, compiled, False, (), compiled.detach
        )
        assert kind == "install"
        assert message[0] == "graph"
        assert ledger.installs == installs_before + 1
        assert ledger.resident_generation(token) == 1

    def test_apply_graph_patch_replays_into_store(self):
        graph = _general_graph(30, 33)
        compiled = graph.compiled()
        token = compiled.payload_token
        store = ResidentGraphStore()
        store.install(token, pickle.loads(pickle.dumps(compiled.detach())))
        compiled.apply_deltas([("add_node", "w3", 1.5, 0.25)])
        compiled.apply_deltas([("add_edge", "w3", compiled.nodes[0], 0.3)])
        batches = compiled.delta_batches_since(0)
        apply_graph_patch(store, token, compiled.generation, batches)
        _assert_bit_identical(store.get(token), compiled)

    def test_apply_graph_patch_generation_mismatch_raises(self):
        graph = _general_graph(30, 34)
        compiled = graph.compiled()
        token = compiled.payload_token
        store = ResidentGraphStore()
        store.install(token, pickle.loads(pickle.dumps(compiled.detach())))
        with pytest.raises(RuntimeError):
            apply_graph_patch(
                store, token, 5, [[("add_node", "w4", 1.0, None)]]
            )


# ----------------------------------------------------------------------
# Warm stage pool: sparse patch instead of re-install, chaos recovery
# ----------------------------------------------------------------------
class TestWarmPoolPatching:
    def _solve(self, graph, pool, rng):
        executor = ShardedStageExecutor(pool=pool)
        solver = CBASND(budget=120, m=6, stages=3, executor=executor)
        return solver.solve(WASOProblem(graph=graph, k=5), rng=rng)

    def test_warm_workers_receive_patch_not_install(self, no_orphans):
        graph = _general_graph(40, 41)
        with StagePool(2) as pool:
            first = self._solve(graph, pool, 4)
            assert pool.installs == 1
            graph.compiled().apply_deltas(
                [("add_node", "late", 1.1, 0.5),
                 ("add_edge", "late", next(iter(graph.nodes())), 0.4)]
            )
            second = self._solve(graph, pool, 4)
            assert pool.installs == 1  # no re-install: patched in place
            assert second.stats.extra["graph_patch_bytes"] > 0
            assert not second.stats.extra["graph_shipped"]
        # And the patched solve matches a cold pool on the same graph.
        with StagePool(2) as pool:
            cold = self._solve(graph, pool, 4)
        assert second.solution.members == cold.solution.members
        assert second.solution.willingness == cold.solution.willingness
        assert first.stats.extra["graph_shipped"]

    def test_worker_killed_mid_patch_stream_reconverges(self, no_orphans):
        graph = _general_graph(40, 42)
        clean_graph = _general_graph(40, 42)
        deltas = [
            ("add_node", "late", 1.1, 0.5),
            ("add_edge", "late", next(iter(graph.nodes())), 0.4),
        ]
        with StagePool(2) as pool:
            self._solve(clean_graph, pool, 4)
            clean_graph.compiled().apply_deltas(list(deltas))
            clean = self._solve(clean_graph, pool, 4)
        with StagePool(2) as pool:
            self._solve(graph, pool, 4)
            graph.compiled().apply_deltas(list(deltas))
            # Kill worker 0 on its next send — the graph_patch record —
            # so recovery must reset its ledger and full-ship the
            # current generation before the solve proceeds.
            plan = FaultPlan(kills=[(0, NEXT_RPC)])
            pool.fault_plan = plan
            faulted = self._solve(graph, pool, 4)
            assert plan.log, "the injected kill never fired"
            assert pool.worker_restarts == 1
            assert pool.healthy
        assert faulted.solution.members == clean.solution.members
        assert faulted.solution.willingness == clean.solution.willingness
        assert faulted.stats.samples_drawn == clean.stats.samples_drawn


# ----------------------------------------------------------------------
# Spec-level generation guard
# ----------------------------------------------------------------------
class TestPayloadSpecGeneration:
    def test_spec_carries_generation_and_guards_mismatch(self):
        graph = _general_graph(20, 51)
        problem = WASOProblem(graph=graph, k=4)
        assert "gen" not in problem.payload_spec()  # baseline bytes
        stale = pickle.loads(pickle.dumps(problem.compiled().detach()))
        graph.compiled().apply_deltas([("add_node", "s1", 1.0, None)])
        spec = problem.payload_spec()
        assert spec["gen"] == 1
        with pytest.raises(ValueError, match="generation"):
            problem_from_payload_spec(stale, spec)
        rebuilt = problem_from_payload_spec(graph.compiled(), spec)
        assert rebuilt.k == problem.k
