"""Tests for start-node selection (CBAS phase 1)."""

import pytest

from repro.algorithms.start_nodes import default_start_count, select_start_nodes
from repro.core.problem import WASOProblem
from repro.core.willingness import WillingnessEvaluator


class TestDefaultCount:
    def test_ceil_n_over_k(self, small_facebook):
        problem = WASOProblem(graph=small_facebook, k=7)
        n = small_facebook.number_of_nodes()
        assert default_start_count(problem) == -(-n // 7)

    def test_at_least_one(self, fig3):
        problem = WASOProblem(graph=fig3, k=10)
        assert default_start_count(problem) == 1


class TestSelection:
    def test_orders_by_potential(self, fig3):
        problem = WASOProblem(graph=fig3, k=5)
        evaluator = WillingnessEvaluator(fig3)
        starts = select_start_nodes(problem, evaluator, 3)
        potentials = [evaluator.node_potential(node) for node in starts]
        # Required-free selection: strictly the top-m by potential.
        all_potentials = sorted(
            (evaluator.node_potential(n) for n in fig3.nodes()), reverse=True
        )
        assert sorted(potentials, reverse=True) == all_potentials[:3]

    def test_required_comes_first(self, fig3):
        problem = WASOProblem(graph=fig3, k=5, required=frozenset({9}))
        evaluator = WillingnessEvaluator(fig3)
        starts = select_start_nodes(problem, evaluator, 2)
        assert starts[0] == 9

    def test_required_fills_quota(self, fig3):
        problem = WASOProblem(
            graph=fig3, k=5, required=frozenset({1, 2, 9})
        )
        evaluator = WillingnessEvaluator(fig3)
        starts = select_start_nodes(problem, evaluator, 2)
        assert len(starts) == 2
        assert set(starts) <= {1, 2, 9}

    def test_forbidden_excluded(self, fig3):
        problem = WASOProblem(graph=fig3, k=5, forbidden=frozenset({5, 10}))
        evaluator = WillingnessEvaluator(fig3)
        starts = select_start_nodes(problem, evaluator, 8)
        assert 5 not in starts
        assert 10 not in starts

    def test_m_larger_than_graph(self, fig3):
        problem = WASOProblem(graph=fig3, k=5)
        evaluator = WillingnessEvaluator(fig3)
        starts = select_start_nodes(problem, evaluator, 50)
        assert len(starts) == 10
        assert len(set(starts)) == 10

    def test_m_validation(self, fig3):
        problem = WASOProblem(graph=fig3, k=5)
        evaluator = WillingnessEvaluator(fig3)
        with pytest.raises(ValueError):
            select_start_nodes(problem, evaluator, 0)

    def test_deterministic(self, small_facebook):
        problem = WASOProblem(graph=small_facebook, k=5)
        evaluator = WillingnessEvaluator(small_facebook)
        first = select_start_nodes(problem, evaluator, 10)
        second = select_start_nodes(problem, evaluator, 10)
        assert first == second
