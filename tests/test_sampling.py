"""Tests for the expansion sampler shared by all randomized solvers."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.sampling import (
    ExpansionSampler,
    pick_from_array,
    seed_for_start,
    weighted_pick,
)
from repro.core.problem import WASOProblem
from repro.core.willingness import WillingnessEvaluator
from repro.graph.generators import random_social_graph


def _sampler(problem):
    return ExpansionSampler(problem, WillingnessEvaluator(problem.graph))


class TestWeightedPick:
    def test_respects_weights(self, rng):
        counts = [0, 0]
        for _ in range(2000):
            counts[weighted_pick(rng, ["a", "b"], [3.0, 1.0])] += 1
        assert counts[0] > counts[1] * 2

    def test_zero_weights_uniform(self, rng):
        counts = [0, 0]
        for _ in range(1000):
            counts[weighted_pick(rng, ["a", "b"], [0.0, 0.0])] += 1
        assert counts[0] > 300 and counts[1] > 300

    def test_negative_treated_as_zero(self, rng):
        for _ in range(100):
            index = weighted_pick(rng, ["a", "b"], [-5.0, 1.0])
            assert index == 1

    def test_single_item(self, rng):
        assert weighted_pick(rng, ["only"], [0.7]) == 0


class TestPickFromArray:
    """The flat-array fast path must mirror ``weighted_pick`` exactly —
    including the degenerate branches, which clamp/fall back without
    rebuilding the gathered weight list."""

    def test_matches_weighted_pick_stream(self):
        array = [0.0, 0.4, 0.0, 1.3, 0.2, 0.0, 0.7]
        frontier = [1, 3, 4, 6, 0]
        weights = [array[i] for i in frontier]
        rng_a, rng_b = random.Random(11), random.Random(11)
        for _ in range(500):
            assert pick_from_array(rng_a, frontier, array) == weighted_pick(
                rng_b, frontier, weights
            )
        assert rng_a.random() == rng_b.random()

    def test_negative_weights_clamped_like_weighted_pick(self):
        array = [-5.0, 1.0, -2.0, 0.5]
        frontier = [0, 1, 2, 3]
        weights = [array[i] for i in frontier]
        rng_a, rng_b = random.Random(7), random.Random(7)
        for _ in range(500):
            picked = pick_from_array(rng_a, frontier, array)
            assert picked == weighted_pick(rng_b, frontier, weights)
            assert picked in (1, 3)  # never a clamped slot
        assert rng_a.random() == rng_b.random()

    def test_all_nonpositive_degrades_to_uniform(self):
        array = [0.0, -1.0, 0.0]
        frontier = [0, 1, 2]
        rng_a, rng_b = random.Random(3), random.Random(3)
        counts = [0, 0, 0]
        for _ in range(900):
            picked = pick_from_array(rng_a, frontier, array)
            # One randrange call and nothing else, same as weighted_pick.
            assert picked == weighted_pick(rng_b, frontier, [0.0, -1.0, 0.0])
            counts[picked] += 1
        assert all(count > 200 for count in counts)
        assert rng_a.random() == rng_b.random()


class TestSeed:
    def test_seed_includes_required(self, path_graph):
        problem = WASOProblem(
            graph=path_graph, k=3, required=frozenset({4})
        )
        assert seed_for_start(problem, 0) == {0, 4}

    def test_seed_plain(self, path_graph):
        problem = WASOProblem(graph=path_graph, k=3)
        assert seed_for_start(problem, 2) == {2}


class TestDraw:
    def test_sample_size_and_connectivity(self, path_graph, rng):
        problem = WASOProblem(graph=path_graph, k=3)
        sampler = _sampler(problem)
        sample = sampler.draw({2}, rng)
        assert sample is not None
        assert len(sample.members) == 3
        assert path_graph.is_connected_subset(sample.members)

    def test_willingness_matches_recompute(self, small_facebook, rng):
        problem = WASOProblem(graph=small_facebook, k=6)
        evaluator = WillingnessEvaluator(small_facebook)
        sampler = ExpansionSampler(problem, evaluator)
        start = next(iter(small_facebook.nodes()))
        for _ in range(20):
            sample = sampler.draw({start}, rng)
            assert sample is not None
            assert sample.willingness == pytest.approx(
                evaluator.value(sample.members), abs=1e-9
            )

    def test_stall_returns_none(self, two_components_graph, rng):
        # k=4 from a triangle component: must stall.
        problem = WASOProblem(
            graph=two_components_graph, k=4, connected=False
        )
        connected_problem = WASOProblem.__new__(WASOProblem)
        # Build the k=4 connected problem bypassing ensure_feasible (the
        # solver would reject it); the sampler itself must cope.
        object.__setattr__(connected_problem, "graph", two_components_graph)
        object.__setattr__(connected_problem, "k", 4)
        object.__setattr__(connected_problem, "connected", True)
        object.__setattr__(connected_problem, "required", frozenset())
        object.__setattr__(connected_problem, "forbidden", frozenset())
        sampler = _sampler(connected_problem)
        assert sampler.draw({0}, rng) is None

    def test_forbidden_never_sampled(self, small_facebook, rng):
        banned = set(list(small_facebook.nodes())[:50])
        start = next(
            n for n in small_facebook.nodes() if n not in banned
        )
        problem = WASOProblem(
            graph=small_facebook, k=5, forbidden=frozenset(banned)
        )
        sampler = _sampler(problem)
        for _ in range(20):
            sample = sampler.draw({start}, rng)
            if sample is not None:
                assert not (sample.members & banned)

    def test_wasodis_frontier_is_everything(self, two_components_graph, rng):
        problem = WASOProblem(
            graph=two_components_graph, k=4, connected=False
        )
        sampler = _sampler(problem)
        saw_cross_component = False
        for _ in range(50):
            sample = sampler.draw({0}, rng)
            assert sample is not None
            if sample.members & {3, 4, 5}:
                saw_cross_component = True
        assert saw_cross_component

    def test_weight_of_biases_selection(self, path_graph, rng):
        problem = WASOProblem(graph=path_graph, k=2)
        sampler = _sampler(problem)
        # From node 2, neighbours are 1 and 3; weight node 3 overwhelmingly.
        weights = {1: 0.001, 3: 1000.0}
        picks = {1: 0, 3: 0}
        for _ in range(200):
            sample = sampler.draw(
                {2}, rng, weight_of=lambda n: weights.get(n, 0.0)
            )
            chosen = next(iter(sample.members - {2}))
            picks[chosen] += 1
        assert picks[3] > picks[1] * 5

    def test_greedy_bias_prefers_high_delta(self, rng):
        from repro.graph.social_graph import SocialGraph

        graph = SocialGraph()
        graph.add_node(0, interest=0.0)
        graph.add_node(1, interest=10.0)
        graph.add_node(2, interest=0.1)
        graph.add_edge(0, 1, 1.0)
        graph.add_edge(0, 2, 1.0)
        problem = WASOProblem(graph=graph, k=2)
        sampler = _sampler(problem)
        picks = {1: 0, 2: 0}
        for _ in range(300):
            sample = sampler.draw({0}, rng, greedy_bias=True)
            picks[next(iter(sample.members - {0}))] += 1
        assert picks[1] > picks[2] * 2

    def test_weight_and_greedy_mutually_exclusive(self, path_graph, rng):
        problem = WASOProblem(graph=path_graph, k=2)
        sampler = _sampler(problem)
        with pytest.raises(ValueError):
            sampler.draw({2}, rng, weight_of=lambda n: 1.0, greedy_bias=True)

    def test_oversized_seed_returns_none(self, path_graph, rng):
        problem = WASOProblem(graph=path_graph, k=2)
        sampler = _sampler(problem)
        assert sampler.draw({0, 1, 2}, rng) is None


class TestHypothesisInvariants:
    @given(
        st.integers(min_value=6, max_value=25),
        st.integers(min_value=2, max_value=6),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=50, deadline=None)
    def test_samples_always_feasible(self, n, k, seed):
        """Every successful draw is a connected k-set of allowed nodes."""
        graph = random_social_graph(n, average_degree=4.0, seed=seed)
        components = graph.connected_components()
        host = max(components, key=len)
        if len(host) < k:
            return  # no feasible instance this round
        problem = WASOProblem(graph=graph, k=k, connected=True)
        sampler = ExpansionSampler(
            problem, WillingnessEvaluator(graph)
        )
        rng = random.Random(seed)
        start = next(iter(host))
        for _ in range(5):
            sample = sampler.draw({start}, rng)
            assert sample is not None
            assert len(sample.members) == k
            assert graph.is_connected_subset(sample.members)
