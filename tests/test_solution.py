"""Tests for GroupSolution feasibility checking."""

import pytest

from repro.core.problem import WASOProblem
from repro.core.solution import GroupSolution


class TestEvaluate:
    def test_computes_willingness(self, triangle_graph):
        problem = WASOProblem(graph=triangle_graph, k=2)
        solution = GroupSolution.evaluate(problem, {"a", "b"})
        assert solution.willingness == pytest.approx(1.0 + 2.0 + 0.5 + 0.5)

    def test_members_frozen(self, triangle_graph):
        problem = WASOProblem(graph=triangle_graph, k=2)
        solution = GroupSolution.evaluate(problem, ["a", "b"])
        assert isinstance(solution.members, frozenset)


class TestFeasibility:
    def test_feasible(self, path_graph):
        problem = WASOProblem(graph=path_graph, k=3)
        solution = GroupSolution.evaluate(problem, {0, 1, 2})
        assert solution.is_feasible(problem)
        assert solution.check_feasible(problem) == []

    def test_wrong_size(self, path_graph):
        problem = WASOProblem(graph=path_graph, k=3)
        solution = GroupSolution.evaluate(problem, {0, 1})
        assert any("size" in v for v in solution.check_feasible(problem))

    def test_unknown_member(self, path_graph):
        problem = WASOProblem(graph=path_graph, k=2)
        solution = GroupSolution(members=frozenset({0, 99}), willingness=0.0)
        assert any("unknown" in v for v in solution.check_feasible(problem))

    def test_missing_required(self, path_graph):
        problem = WASOProblem(
            graph=path_graph, k=2, required=frozenset({4})
        )
        solution = GroupSolution.evaluate(problem, {0, 1})
        assert any("required" in v for v in solution.check_feasible(problem))

    def test_forbidden_present(self, path_graph):
        problem = WASOProblem(
            graph=path_graph, k=2, forbidden=frozenset({0})
        )
        solution = GroupSolution.evaluate(problem, {0, 1})
        assert any("forbidden" in v for v in solution.check_feasible(problem))

    def test_disconnected(self, path_graph):
        problem = WASOProblem(graph=path_graph, k=2)
        solution = GroupSolution.evaluate(problem, {0, 4})
        assert any("connected" in v for v in solution.check_feasible(problem))

    def test_disconnected_ok_for_wasodis(self, path_graph):
        problem = WASOProblem(graph=path_graph, k=2, connected=False)
        solution = GroupSolution.evaluate(problem, {0, 4})
        assert solution.is_feasible(problem)

    def test_multiple_violations_reported(self, path_graph):
        problem = WASOProblem(
            graph=path_graph,
            k=3,
            required=frozenset({2}),
            forbidden=frozenset({0}),
        )
        solution = GroupSolution.evaluate(problem, {0, 4})
        violations = solution.check_feasible(problem)
        assert len(violations) >= 3


class TestPresentation:
    def test_sorted_members(self, path_graph):
        solution = GroupSolution(members=frozenset({3, 1, 2}), willingness=1.0)
        assert solution.sorted_members() == [1, 2, 3]

    def test_str(self, path_graph):
        solution = GroupSolution(members=frozenset({1}), willingness=2.5)
        assert "2.5" in str(solution)
