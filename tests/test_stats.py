"""Tests for graph summary statistics."""

import pytest

from repro.graph.generators import facebook_like, grid_graph, ring_graph
from repro.graph.social_graph import SocialGraph
from repro.graph.stats import degree_histogram, summarize


class TestSummarize:
    def test_triangle(self, triangle_graph):
        summary = summarize(triangle_graph)
        assert summary.nodes == 3
        assert summary.edges == 3
        assert summary.average_degree == pytest.approx(2.0)
        assert summary.max_degree == 2
        assert summary.clustering == pytest.approx(1.0)
        assert summary.components == 1
        assert summary.largest_component == 3
        assert summary.interest_mean == pytest.approx(2.0)
        assert summary.interest_max == 3.0

    def test_two_components(self, two_components_graph):
        summary = summarize(two_components_graph)
        assert summary.components == 2
        assert summary.largest_component == 3

    def test_empty_graph(self):
        summary = summarize(SocialGraph())
        assert summary.nodes == 0
        assert summary.edges == 0
        assert summary.average_degree == 0.0

    def test_ring_clustering_zero(self):
        summary = summarize(ring_graph(12))
        assert summary.clustering == pytest.approx(0.0)

    def test_as_dict_and_str(self, triangle_graph):
        summary = summarize(triangle_graph)
        data = summary.as_dict()
        assert data["nodes"] == 3
        assert "n=3" in str(summary)

    def test_facebook_clustering_positive(self):
        summary = summarize(facebook_like(150, seed=4))
        assert summary.clustering > 0.05  # community structure present


class TestDegreeHistogram:
    def test_grid(self):
        histogram = degree_histogram(grid_graph(3), bins=5)
        assert sum(histogram) == 9

    def test_empty(self):
        assert degree_histogram(SocialGraph(), bins=4) == [0, 0, 0, 0]

    def test_bins_validation(self, triangle_graph):
        with pytest.raises(ValueError):
            degree_histogram(triangle_graph, bins=0)

    def test_all_mass_counted(self):
        graph = facebook_like(100, seed=1)
        histogram = degree_histogram(graph, bins=8)
        assert sum(histogram) == graph.number_of_nodes()
