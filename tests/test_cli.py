"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestGenerate:
    def test_generate_writes_graph(self, tmp_path, capsys):
        out = tmp_path / "g.json"
        code = main(
            [
                "generate",
                "--family",
                "dblp",
                "--size",
                "80",
                "--seed",
                "3",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        assert out.exists()
        assert "dblp" in capsys.readouterr().out

    def test_default_family(self, tmp_path):
        out = tmp_path / "g.json"
        assert main(["generate", "--size", "60", "--out", str(out)]) == 0


class TestStats:
    def test_stats_prints_summary(self, tmp_path, capsys):
        out = tmp_path / "g.json"
        main(["generate", "--size", "60", "--seed", "1", "--out", str(out)])
        capsys.readouterr()
        assert main(["stats", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "n=" in printed


class TestSolve:
    @pytest.fixture
    def graph_file(self, tmp_path):
        out = tmp_path / "g.json"
        main(
            [
                "generate",
                "--family",
                "random",
                "--size",
                "40",
                "--seed",
                "2",
                "--out",
                str(out),
            ]
        )
        return out

    def test_solve_prints_members(self, graph_file, capsys):
        code = main(
            [
                "solve",
                str(graph_file),
                "--k",
                "4",
                "--solver",
                "dgreedy",
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "k=4" in printed
        assert "W=" in printed

    def test_solve_k_range(self, graph_file, capsys):
        code = main(
            [
                "solve",
                str(graph_file),
                "--k",
                "3",
                "--k-max",
                "5",
                "--solver",
                "cbas-nd",
                "--budget",
                "30",
                "--m",
                "4",
                "--seed",
                "1",
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "k=3" in printed and "k=5" in printed

    def test_solve_disconnected(self, graph_file, capsys):
        code = main(
            [
                "solve",
                str(graph_file),
                "--k",
                "3",
                "--solver",
                "dgreedy",
                "--disconnected",
            ]
        )
        assert code == 0

    def test_require_flag(self, graph_file, capsys):
        code = main(
            [
                "solve",
                str(graph_file),
                "--k",
                "3",
                "--solver",
                "dgreedy",
                "--require",
                "0",
            ]
        )
        assert code == 0
        assert "0" in capsys.readouterr().out


class TestParser:
    def test_unknown_solver_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["solve", "g.json", "--k", "3", "--solver", "x"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
