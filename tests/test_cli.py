"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestGenerate:
    def test_generate_writes_graph(self, tmp_path, capsys):
        out = tmp_path / "g.json"
        code = main(
            [
                "generate",
                "--family",
                "dblp",
                "--size",
                "80",
                "--seed",
                "3",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        assert out.exists()
        assert "dblp" in capsys.readouterr().out

    def test_default_family(self, tmp_path):
        out = tmp_path / "g.json"
        assert main(["generate", "--size", "60", "--out", str(out)]) == 0


class TestStats:
    def test_stats_prints_summary(self, tmp_path, capsys):
        out = tmp_path / "g.json"
        main(["generate", "--size", "60", "--seed", "1", "--out", str(out)])
        capsys.readouterr()
        assert main(["stats", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "n=" in printed


class TestSolve:
    @pytest.fixture
    def graph_file(self, tmp_path):
        out = tmp_path / "g.json"
        main(
            [
                "generate",
                "--family",
                "random",
                "--size",
                "40",
                "--seed",
                "2",
                "--out",
                str(out),
            ]
        )
        return out

    def test_solve_prints_members(self, graph_file, capsys):
        code = main(
            [
                "solve",
                str(graph_file),
                "--k",
                "4",
                "--solver",
                "dgreedy",
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "k=4" in printed
        assert "W=" in printed

    def test_solve_k_range(self, graph_file, capsys):
        code = main(
            [
                "solve",
                str(graph_file),
                "--k",
                "3",
                "--k-max",
                "5",
                "--solver",
                "cbas-nd",
                "--budget",
                "30",
                "--m",
                "4",
                "--seed",
                "1",
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "k=3" in printed and "k=5" in printed

    def test_solve_disconnected(self, graph_file, capsys):
        code = main(
            [
                "solve",
                str(graph_file),
                "--k",
                "3",
                "--solver",
                "dgreedy",
                "--disconnected",
            ]
        )
        assert code == 0

    def test_require_flag(self, graph_file, capsys):
        code = main(
            [
                "solve",
                str(graph_file),
                "--k",
                "3",
                "--solver",
                "dgreedy",
                "--require",
                "0",
            ]
        )
        assert code == 0
        assert "0" in capsys.readouterr().out


    def test_runtime_flags(self, graph_file, capsys):
        code = main(
            [
                "solve",
                str(graph_file),
                "--k",
                "4",
                "--solver",
                "cbas-nd",
                "--budget",
                "40",
                "--m",
                "4",
                "--seed",
                "3",
                "--workers",
                "2",
                "--mode",
                "serial",
            ]
        )
        assert code == 0
        assert "k=4" in capsys.readouterr().out

    def test_workers_and_mode_do_not_change_seeded_members(
        self, graph_file, capsys
    ):
        """--mode solve multiplexes but single solves stay serial inside
        their worker, so the seeded output line is unchanged."""
        base = [
            "solve", str(graph_file), "--k", "4", "--solver", "cbas-nd",
            "--budget", "40", "--m", "4", "--seed", "3",
        ]
        assert main(base) == 0
        serial_out = capsys.readouterr().out
        assert main(base + ["--workers", "2", "--mode", "solve"]) == 0
        # mode=solve splits the budget (a different, documented
        # computation) — but it must still print a well-formed line.
        assert "k=4" in capsys.readouterr().out
        assert "k=4" in serial_out


class TestSolveMany:
    @pytest.fixture
    def graph_file(self, tmp_path):
        out = tmp_path / "g.json"
        main(
            [
                "generate",
                "--family",
                "random",
                "--size",
                "40",
                "--seed",
                "2",
                "--out",
                str(out),
            ]
        )
        return out

    def _write_requests(self, tmp_path, lines):
        import json

        path = tmp_path / "requests.jsonl"
        path.write_text(
            "\n".join(json.dumps(line) for line in lines) + "\n",
            encoding="utf-8",
        )
        return path

    def test_batch_smoke(self, graph_file, tmp_path, capsys):
        path = self._write_requests(
            tmp_path,
            [
                {"k": 4, "solver": "cbas-nd", "budget": 40, "m": 4,
                 "stages": 2, "seed": 7},
                {"k": 3, "solver": "dgreedy"},
                {"k": 5, "budget": 30, "m": 3, "stages": 2, "seed": 9,
                 "required": [0]},
            ],
        )
        code = main(
            [
                "solve-many",
                str(graph_file),
                str(path),
                "--workers",
                "2",
                "--mode",
                "solve",
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert printed.count("W=") == 3
        assert "#0 cbas-nd k=4" in printed
        assert "#1 dgreedy k=3" in printed
        assert "#2 cbas-nd k=5" in printed

    def test_batch_matches_single_solves(self, graph_file, tmp_path, capsys):
        path = self._write_requests(
            tmp_path,
            [{"k": 4, "budget": 40, "m": 4, "seed": 7}],
        )
        assert main(["solve-many", str(graph_file), str(path)]) == 0
        batch_line = capsys.readouterr().out.strip().splitlines()[-1]
        assert main(
            [
                "solve", str(graph_file), "--k", "4", "--budget", "40",
                "--m", "4", "--seed", "7",
            ]
        ) == 0
        single_line = capsys.readouterr().out.strip().splitlines()[-1]
        # Same members, same willingness — the batch front door is
        # bit-identical to the one-by-one path.
        assert batch_line.split("members=")[1] == (
            single_line.split("members=")[1]
        )
        assert batch_line.split("W=")[1].split()[0] == (
            single_line.split("W=")[1].split()[0]
        )

    def test_empty_batch(self, graph_file, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("", encoding="utf-8")
        assert main(["solve-many", str(graph_file), str(path)]) == 0
        assert "no requests" in capsys.readouterr().out

    def test_invalid_json_line_reported(self, graph_file, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"k": 4}\nnot json\n', encoding="utf-8")
        with pytest.raises(SystemExit, match="invalid JSON"):
            main(["solve-many", str(graph_file), str(path)])

    def test_semantic_errors_reported_with_line_numbers(
        self, graph_file, tmp_path
    ):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"solver": "cbas-nd"}\n', encoding="utf-8")
        with pytest.raises(SystemExit, match="bad.jsonl:1.*'k'"):
            main(["solve-many", str(graph_file), str(path)])
        path.write_text('{"k": 4}\n{"k": 4, "solver": "nope"}\n')
        with pytest.raises(SystemExit, match="bad.jsonl:2.*unknown solver"):
            main(["solve-many", str(graph_file), str(path)])


class TestParser:
    def test_unknown_solver_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["solve", "g.json", "--k", "3", "--solver", "x"])

    def test_unknown_mode_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(
                ["solve", "g.json", "--k", "3", "--mode", "openmp"]
            )

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
